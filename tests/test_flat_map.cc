/**
 * @file
 * Unit and randomized-model tests for the open-addressing FlatMap and
 * FlatSet (common/flat_map.hh). The randomized suites drive the same
 * operation sequence through a std::unordered_map reference model and
 * require identical observable state after every step — in particular
 * across erases, which use backward-shift deletion.
 */

#include <algorithm>
#include <cstdint>
#include <random>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "common/flat_map.hh"

namespace
{

using pipm::FlatMap;
using pipm::FlatSet;

TEST(FlatMap, StartsEmpty)
{
    FlatMap<std::uint64_t, int> m;
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.size(), 0u);
    EXPECT_EQ(m.find(1), m.end());
    EXPECT_FALSE(m.contains(1));
}

TEST(FlatMap, InsertFindErase)
{
    FlatMap<std::uint64_t, int> m;
    auto [it, inserted] = m.emplace(7, 42);
    EXPECT_TRUE(inserted);
    EXPECT_EQ(it->first, 7u);
    EXPECT_EQ(it->second, 42);
    EXPECT_EQ(m.size(), 1u);

    auto [it2, inserted2] = m.emplace(7, 99);
    EXPECT_FALSE(inserted2);
    EXPECT_EQ(it2->second, 42);

    m[7] = 11;
    EXPECT_EQ(m.at(7), 11);
    EXPECT_TRUE(m.erase(7));
    EXPECT_FALSE(m.erase(7));
    EXPECT_TRUE(m.empty());
}

TEST(FlatMap, OperatorBracketDefaultConstructs)
{
    FlatMap<std::uint64_t, std::uint64_t> m;
    EXPECT_EQ(m[5], 0u);
    m[5] += 3;
    EXPECT_EQ(m.at(5), 3u);
    EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, GrowsPastInitialCapacityAndKeepsEntries)
{
    FlatMap<std::uint64_t, std::uint64_t> m;
    for (std::uint64_t k = 0; k < 10'000; ++k)
        m.emplace(k * 0x10001ull, k);
    EXPECT_EQ(m.size(), 10'000u);
    for (std::uint64_t k = 0; k < 10'000; ++k) {
        auto it = m.find(k * 0x10001ull);
        ASSERT_NE(it, m.end());
        EXPECT_EQ(it->second, k);
    }
}

TEST(FlatMap, ReservePreventsInvalidationDuringFill)
{
    FlatMap<std::uint64_t, int> m;
    m.reserve(1000);
    const std::size_t cap = m.capacity();
    for (std::uint64_t k = 0; k < 1000; ++k)
        m.emplace(k, static_cast<int>(k));
    EXPECT_EQ(m.capacity(), cap);
}

TEST(FlatMap, SortedKeysIsSortedAndComplete)
{
    FlatMap<std::uint64_t, int> m;
    const std::uint64_t keys[] = {9, 1, 1u << 30, 4, 77, 3};
    for (std::uint64_t k : keys)
        m.emplace(k, 0);
    const std::vector<std::uint64_t> sorted = m.sortedKeys();
    ASSERT_EQ(sorted.size(), std::size(keys));
    EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));
    for (std::uint64_t k : keys)
        EXPECT_TRUE(std::find(sorted.begin(), sorted.end(), k) !=
                    sorted.end());
}

TEST(FlatMap, EraseByIteratorRemovesEntry)
{
    FlatMap<std::uint64_t, int> m;
    for (std::uint64_t k = 0; k < 100; ++k)
        m.emplace(k, static_cast<int>(k));
    // erase(iterator) invalidates iterators (backward shift), so each
    // erase re-finds its target; sortedKeys snapshots the victims.
    std::size_t erased = 0;
    for (std::uint64_t k : m.sortedKeys()) {
        if (k % 2 == 0) {
            m.erase(m.find(k));
            ++erased;
        }
    }
    EXPECT_EQ(erased, 50u);
    EXPECT_EQ(m.size(), 50u);
    for (std::uint64_t k = 0; k < 100; ++k)
        EXPECT_EQ(m.contains(k), k % 2 == 1);
}

TEST(FlatMap, BackwardShiftKeepsCollidingKeysFindable)
{
    // Keys that collide module a small capacity exercise the
    // backward-shift displacement condition on erase.
    FlatMap<std::uint64_t, int> m;
    std::vector<std::uint64_t> keys;
    for (std::uint64_t k = 0; k < 64; ++k)
        keys.push_back(k * 16);   // strided keys stress probe runs
    for (std::uint64_t k : keys)
        m.emplace(k, static_cast<int>(k));
    // Erase every third key, then verify everything else.
    for (std::size_t i = 0; i < keys.size(); i += 3)
        EXPECT_TRUE(m.erase(keys[i]));
    for (std::size_t i = 0; i < keys.size(); ++i) {
        if (i % 3 == 0)
            EXPECT_FALSE(m.contains(keys[i]));
        else
            EXPECT_TRUE(m.contains(keys[i]));
    }
}

TEST(FlatMap, RandomizedAgainstUnorderedMapModel)
{
    std::mt19937_64 rng(12345);
    FlatMap<std::uint64_t, std::uint64_t> m;
    std::unordered_map<std::uint64_t, std::uint64_t> model;
    // A small key universe forces plenty of hits, misses, duplicate
    // inserts and erases of present keys.
    const std::uint64_t universe = 512;
    for (int step = 0; step < 100'000; ++step) {
        const std::uint64_t key = rng() % universe;
        switch (rng() % 4) {
          case 0: {   // emplace
            const std::uint64_t value = rng();
            auto [mit, mins] = m.emplace(key, value);
            auto [uit, uins] = model.emplace(key, value);
            EXPECT_EQ(mins, uins);
            EXPECT_EQ(mit->second, uit->second);
            break;
          }
          case 1: {   // insert_or_assign
            const std::uint64_t value = rng();
            m.insert_or_assign(key, value);
            model[key] = value;
            break;
          }
          case 2: {   // erase
            EXPECT_EQ(m.erase(key), model.erase(key) != 0);
            break;
          }
          default: {   // find
            auto mit = m.find(key);
            auto uit = model.find(key);
            ASSERT_EQ(mit == m.end(), uit == model.end());
            if (uit != model.end()) {
                EXPECT_EQ(mit->second, uit->second);
            }
            break;
          }
        }
        ASSERT_EQ(m.size(), model.size());
    }
    // Full-state comparison at the end.
    for (const auto &[k, v] : model) {
        auto it = m.find(k);
        ASSERT_NE(it, m.end());
        EXPECT_EQ(it->second, v);
    }
    std::size_t iterated = 0;
    for (const auto &[k, v] : m) {
        auto uit = model.find(k);
        ASSERT_NE(uit, model.end());
        EXPECT_EQ(v, uit->second);
        ++iterated;
    }
    EXPECT_EQ(iterated, model.size());
}

TEST(FlatSet, InsertEraseContains)
{
    FlatSet<std::uint64_t> s;
    EXPECT_TRUE(s.insert(3));
    EXPECT_FALSE(s.insert(3));
    EXPECT_TRUE(s.contains(3));
    EXPECT_EQ(s.size(), 1u);
    EXPECT_TRUE(s.erase(3));
    EXPECT_FALSE(s.erase(3));
    EXPECT_FALSE(s.contains(3));
}

TEST(FlatSet, RandomizedAgainstUnorderedSetModel)
{
    std::mt19937_64 rng(999);
    FlatSet<std::uint64_t> s;
    std::unordered_set<std::uint64_t> model;
    for (int step = 0; step < 50'000; ++step) {
        const std::uint64_t key = rng() % 256;
        if (rng() % 2) {
            EXPECT_EQ(s.insert(key), model.insert(key).second);
        } else {
            EXPECT_EQ(s.erase(key), model.erase(key) != 0);
        }
        ASSERT_EQ(s.size(), model.size());
    }
    const std::vector<std::uint64_t> sorted = s.sortedKeys();
    EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));
    EXPECT_EQ(sorted.size(), model.size());
    for (std::uint64_t k : sorted)
        EXPECT_TRUE(model.count(k));
}

} // namespace
