/**
 * @file
 * Differential-fuzzer regression suite (DESIGN.md §13).
 *
 * Three layers:
 *  - sampler health: every sampled case repairs into a valid config, and
 *    sampling is deterministic in the seed;
 *  - one pinned shrunk configuration per oracle class, exactly the shape
 *    `fuzz_run` prints when a case fails — these pin the equivalence
 *    contracts at configurations the random sampler reached rather than
 *    only at hand-picked defaults;
 *  - a planted-mutation self-test: seed a deliberate scheduler
 *    divergence through the test hook, prove the "sched" oracle catches
 *    it, and prove the minimizer shrinks the reproducer down to at most
 *    two active fault domains.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/logging.hh"
#include "fuzz/fuzz.hh"

namespace pipm
{
namespace
{

using fuzz::FuzzCase;

struct ThrowOnErrorGuard
{
    ThrowOnErrorGuard() { detail::throwOnError = true; }
    ~ThrowOnErrorGuard() { detail::throwOnError = false; }
};

/** Restore the planted-bug hook no matter how the test exits. */
struct SkewGuard
{
    explicit SkewGuard(Cycles skew) { fuzz::hooks().schedExecSkew = skew; }
    ~SkewGuard() { fuzz::hooks().schedExecSkew = 0; }
};

// ---- Sampler health -----------------------------------------------------

TEST(FuzzSampler, EverySampledCaseIsValid)
{
    ThrowOnErrorGuard guard;
    for (std::uint64_t seed = 1; seed <= 100; ++seed) {
        const FuzzCase c = fuzz::sampleCase(seed);
        std::string why;
        EXPECT_TRUE(fuzz::caseValid(c, &why))
            << "seed " << seed << ": " << why << "\n"
            << fuzz::describeCase(c);
    }
}

TEST(FuzzSampler, SamplingIsDeterministicInTheSeed)
{
    ThrowOnErrorGuard guard;
    for (std::uint64_t seed = 1; seed <= 50; ++seed) {
        EXPECT_EQ(fuzz::caseKey(fuzz::sampleCase(seed)),
                  fuzz::caseKey(fuzz::sampleCase(seed)))
            << "seed " << seed;
    }
    // ...and different seeds do explore: at least one pair differs.
    EXPECT_NE(fuzz::caseKey(fuzz::sampleCase(1)),
              fuzz::caseKey(fuzz::sampleCase(2)));
}

TEST(FuzzSampler, RepairClampsWildCases)
{
    ThrowOnErrorGuard guard;
    FuzzCase c = fuzz::defaultCase();
    c.cfg.numHosts = 200;               // > 32-host validate() ceiling
    c.cfg.pipm.migrationThreshold = 0;  // must be >= 1
    c.cfg.fault.enabled = true;
    c.cfg.fault.stallMeanIntervalNs = 40'000.0;  // stalls without lease
    c.cfg.fault.txnRetryLimit = 0;
    c.cfg.fault.txnBackoffBaseNs = 500.0;        // retry/backoff mismatch
    c.measureRefs = 0;
    fuzz::repairCase(c);
    std::string why;
    EXPECT_TRUE(fuzz::caseValid(c, &why)) << why;
    EXPECT_GE(c.measureRefs, 1u);
}

// ---- One pinned shrunk configuration per oracle class -------------------
//
// Each case below is the shrunk shape the minimizer converges to for its
// oracle class: the default small case plus only the knobs that matter
// for that contract. EXPECT_TRUE(ok) pins the equivalence; `detail`
// carries the first divergent field on regression.

TEST(FuzzRegressions, SchedOracleCrashLeaseSeed1)
{
    ThrowOnErrorGuard guard;
    FuzzCase c = fuzz::defaultCase();
    c.cfg.numHosts = 3;
    c.workload = "canneal";
    c.cfg.fault.enabled = true;
    c.cfg.fault.crashMeanIntervalNs = 60'000.0;
    c.cfg.fault.crashRejoinNs = 30'000.0;
    c.cfg.fault.leaseNs = 80'000.0;
    fuzz::repairCase(c);
    ASSERT_TRUE(fuzz::caseValid(c));
    const auto r = fuzz::coreOracle("sched").check(c);
    EXPECT_TRUE(r.ok) << r.detail;
}

TEST(FuzzRegressions, FaultZeroOracleAllDomainsAtZeroRate)
{
    ThrowOnErrorGuard guard;
    FuzzCase c = fuzz::defaultCase();
    c.cfg.numHosts = 2;
    c.workload = "tpcc";
    c.scheme = Scheme::pipmFull;
    fuzz::repairCase(c);
    ASSERT_TRUE(fuzz::caseValid(c));
    const auto r = fuzz::coreOracle("faultzero").check(c);
    EXPECT_TRUE(r.ok) << r.detail;
}

TEST(FuzzRegressions, InvariantsOracleMetaCorruptionSeed7)
{
    ThrowOnErrorGuard guard;
    FuzzCase c = fuzz::defaultCase();
    c.cfg.numHosts = 3;
    c.workload = "sssp";
    c.cfg.fault.enabled = true;
    c.cfg.fault.crashMeanIntervalNs = 80'000.0;
    c.cfg.fault.metaCorruptMeanIntervalNs = 40'000.0;
    fuzz::repairCase(c);
    ASSERT_TRUE(fuzz::caseValid(c));
    const auto r = fuzz::coreOracle("invariants").check(c);
    EXPECT_TRUE(r.ok) << r.detail;
}

TEST(FuzzRegressions, StatsJsonOracleLinkFaults)
{
    ThrowOnErrorGuard guard;
    FuzzCase c = fuzz::defaultCase();
    c.workload = "ycsb";
    c.cfg.fault.enabled = true;
    c.cfg.fault.linkErrorRate = 1e-4;
    c.cfg.fault.poisonRate = 0.05;
    fuzz::repairCase(c);
    ASSERT_TRUE(fuzz::caseValid(c));
    const auto r = fuzz::coreOracle("statsjson").check(c);
    EXPECT_TRUE(r.ok) << r.detail;
}

// The fifth oracle class ("jobs": bench-cache rows are byte-identical at
// any PIPM_BENCH_JOBS) needs the bench sweep infrastructure and lives in
// bench/fuzz_run.cc; test_bench_sweep.cc covers the same contract at the
// library level.

// ---- Planted-mutation self-test -----------------------------------------

TEST(FuzzSelfTest, PlantedSchedulerSkewIsDetectedAndMinimized)
{
    ThrowOnErrorGuard guard;

    // A busy sampled case: several fault domains, so the minimizer has
    // something real to strip. Seeded scheduler divergence: the scan
    // run's execCycles is off by one cycle.
    FuzzCase noisy = fuzz::sampleCase(26);
    noisy.cfg.fault.enabled = true;
    noisy.cfg.fault.linkErrorRate = 1e-4;
    noisy.cfg.fault.crashMeanIntervalNs = 90'000.0;
    noisy.cfg.fault.leaseNs = 80'000.0;
    noisy.cfg.fault.metaCorruptMeanIntervalNs = 60'000.0;
    fuzz::repairCase(noisy);
    ASSERT_TRUE(fuzz::caseValid(noisy));
    ASSERT_GE(noisy.cfg.fault.activeDomains(), 3u);

    const fuzz::Oracle sched = fuzz::coreOracle("sched");
    ASSERT_TRUE(sched.check(noisy).ok)
        << "case must pass before the bug is planted";

    SkewGuard skew(1);
    const auto verdict = sched.check(noisy);
    ASSERT_FALSE(verdict.ok) << "planted skew must be detected";
    EXPECT_NE(verdict.detail.find("execCycles"), std::string::npos)
        << verdict.detail;

    const fuzz::MinimizedCase m = fuzz::minimizeCase(noisy, sched);
    EXPECT_FALSE(m.failure.ok);   // still reproduces after shrinking
    EXPECT_GT(m.shrinks, 0u);
    // The skew hits every config, so fault domains are all strippable:
    // the minimizer must get the reproducer down to at most two.
    EXPECT_LE(m.best.cfg.fault.activeDomains(), 2u)
        << fuzz::describeCase(m.best);

    // The reproducer renders to a pasteable regression test.
    const std::string code = fuzz::renderRegressionTest(m.best, "sched", 26);
    EXPECT_NE(code.find("TEST(FuzzRegressions"), std::string::npos);
    EXPECT_NE(code.find("coreOracle(\"sched\")"), std::string::npos);
}

TEST(FuzzSelfTest, HookRestoredOraclePassesAgain)
{
    ThrowOnErrorGuard guard;
    ASSERT_EQ(fuzz::hooks().schedExecSkew, 0u);
    FuzzCase c = fuzz::defaultCase();
    fuzz::repairCase(c);
    const auto r = fuzz::coreOracle("sched").check(c);
    EXPECT_TRUE(r.ok) << r.detail;
}

} // namespace
} // namespace pipm
