/**
 * @file
 * Unit tests for harmful-migration accounting (Fig. 5 semantics).
 */

#include <gtest/gtest.h>

#include "migration/harmful.hh"

namespace pipm
{
namespace
{

// est_local=100, est_cxl=300, est_gim=900, migration cost=1000:
// each local hit earns +200; each remote access costs -600.
HarmfulTracker
makeTracker()
{
    return HarmfulTracker(100, 300, 900, 1000);
}

TEST(Harmful, MigrationWithEnoughLocalHitsIsBeneficial)
{
    HarmfulTracker t = makeTracker();
    t.onMigration(1, 0);
    for (int i = 0; i < 6; ++i)   // 6 * 200 = 1200 > 1000
        t.onLocalHit(1);
    t.finish();
    EXPECT_EQ(t.totalMigrations(), 1u);
    EXPECT_EQ(t.harmfulMigrations(), 0u);
}

TEST(Harmful, MigrationCostAloneMakesIdlePageHarmful)
{
    HarmfulTracker t = makeTracker();
    t.onMigration(1, 0);
    t.finish();
    EXPECT_EQ(t.harmfulMigrations(), 1u);
}

TEST(Harmful, RemoteAccessesOutweighLocalGains)
{
    HarmfulTracker t = makeTracker();
    t.onMigration(1, 0);
    for (int i = 0; i < 10; ++i)
        t.onLocalHit(1);        // +2000
    for (int i = 0; i < 4; ++i)
        t.onRemoteAccess(1);    // -2400, plus -1000 migration
    t.finish();
    EXPECT_EQ(t.harmfulMigrations(), 1u);
}

TEST(Harmful, DemotionFinalisesTheRecord)
{
    HarmfulTracker t = makeTracker();
    t.onMigration(1, 0);
    for (int i = 0; i < 6; ++i)
        t.onLocalHit(1);
    t.onDemotion(1);
    EXPECT_EQ(t.totalMigrations(), 1u);
    EXPECT_EQ(t.harmfulMigrations(), 0u);
    // Accesses after demotion are ignored.
    t.onRemoteAccess(1);
    t.finish();
    EXPECT_EQ(t.totalMigrations(), 1u);
}

TEST(Harmful, RemigrationClosesThePreviousRecord)
{
    HarmfulTracker t = makeTracker();
    t.onMigration(1, 0);          // record A: idle -> harmful
    t.onMigration(1, 1);          // closes A, opens B
    for (int i = 0; i < 6; ++i)
        t.onLocalHit(1);          // B beneficial
    t.finish();
    EXPECT_EQ(t.totalMigrations(), 2u);
    EXPECT_EQ(t.harmfulMigrations(), 1u);
    EXPECT_NEAR(t.harmfulFraction(), 0.5, 1e-9);
}

TEST(Harmful, UntrackedPagesAreIgnored)
{
    HarmfulTracker t = makeTracker();
    t.onLocalHit(3);
    t.onRemoteAccess(3);
    t.onDemotion(3);
    t.finish();
    EXPECT_EQ(t.totalMigrations(), 0u);
    EXPECT_DOUBLE_EQ(t.harmfulFraction(), 0.0);
}

} // namespace
} // namespace pipm
