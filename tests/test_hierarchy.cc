/**
 * @file
 * Unit tests for the per-host cache hierarchy (inclusive L1 + LLC with
 * host-level coherence states).
 */

#include <gtest/gtest.h>

#include <optional>
#include <random>

#include "cache/hierarchy.hh"
#include "common/logging.hh"

namespace pipm
{
namespace
{

class HierarchyTest : public ::testing::Test
{
  protected:
    HierarchyTest() : cfg_(testConfig()), hier_(cfg_, 1) {}

    SystemConfig cfg_;
    CacheHierarchy hier_;
};

TEST_F(HierarchyTest, MissThenFillThenL1Hit)
{
    EXPECT_EQ(hier_.lookup(0, 100).level, HitLevel::miss);
    hier_.fill(0, 100, HostState::S, false, 42);
    const auto r = hier_.lookup(0, 100);
    EXPECT_EQ(r.level, HitLevel::l1);
    EXPECT_EQ(r.state, HostState::S);
    EXPECT_EQ(hier_.dataOf(100), 42u);
}

TEST_F(HierarchyTest, LlcHitAfterL1Eviction)
{
    hier_.fill(0, 100, HostState::M, false, 1);
    // Evict line 100 from the tiny L1 by filling conflicting lines; the
    // LLC keeps it (inclusive).
    for (LineAddr l = 1000; l < 1200; ++l)
        hier_.fill(0, l, HostState::M, false, 0);
    const auto r = hier_.lookup(0, 100);
    EXPECT_NE(r.level, HitLevel::miss);
}

TEST_F(HierarchyTest, RecordWriteMarksDirtyAndUpdatesData)
{
    hier_.fill(0, 7, HostState::M, false, 5);
    hier_.recordWrite(0, 7, 99);
    auto ev = hier_.invalidateLine(7);
    ASSERT_TRUE(ev);
    EXPECT_TRUE(ev->dirty);
    EXPECT_EQ(ev->data, 99u);
}

TEST_F(HierarchyTest, WriteToSharedStatePanics)
{
    detail::throwOnError = true;
    hier_.fill(0, 7, HostState::S, false, 5);
    EXPECT_THROW(hier_.recordWrite(0, 7, 1), SimError);
    detail::throwOnError = false;
}

TEST_F(HierarchyTest, SetStateTransitions)
{
    hier_.fill(0, 7, HostState::M, false, 5);
    hier_.setState(7, HostState::S);
    EXPECT_EQ(hier_.stateOf(7), HostState::S);
    EXPECT_EQ(hier_.stateOf(8), HostState::I);
}

TEST_F(HierarchyTest, InvalidateReturnsContent)
{
    hier_.fill(0, 7, HostState::ME, true, 123);
    auto ev = hier_.invalidateLine(7);
    ASSERT_TRUE(ev);
    EXPECT_EQ(ev->state, HostState::ME);
    EXPECT_TRUE(ev->dirty);
    EXPECT_EQ(ev->data, 123u);
    EXPECT_EQ(hier_.stateOf(7), HostState::I);
    EXPECT_FALSE(hier_.invalidateLine(7));
}

TEST_F(HierarchyTest, CapacityEvictionsSurface)
{
    bool evicted_any = false;
    // Overfill the LLC (64KB per core at scale = tiny in testConfig).
    for (LineAddr l = 0; l < 100000; ++l) {
        auto ev = hier_.fill(0, l, HostState::M, false, 0);
        if (ev) {
            evicted_any = true;
            EXPECT_LT(ev->line, 100000u);
        }
    }
    EXPECT_TRUE(evicted_any);
    EXPECT_GT(hier_.llcEvictions.value(), 0u);
}

TEST_F(HierarchyTest, MarkCleanClearsDirty)
{
    hier_.fill(0, 7, HostState::M, true, 5);
    hier_.markClean(7);
    auto ev = hier_.invalidateLine(7);
    ASSERT_TRUE(ev);
    EXPECT_FALSE(ev->dirty);
}

TEST_F(HierarchyTest, FlushAllReturnsEverythingAndEmpties)
{
    for (LineAddr l = 0; l < 20; ++l)
        hier_.fill(0, l, HostState::M, true, l);
    auto all = hier_.flushAll();
    EXPECT_EQ(all.size(), 20u);
    for (LineAddr l = 0; l < 20; ++l)
        EXPECT_EQ(hier_.stateOf(l), HostState::I);
}

TEST_F(HierarchyTest, StatsCountHitsAndMisses)
{
    hier_.lookup(0, 1);   // miss
    hier_.fill(0, 1, HostState::S, false, 0);
    hier_.lookup(0, 1);   // L1 hit
    EXPECT_EQ(hier_.misses.value(), 1u);
    EXPECT_EQ(hier_.l1Hits.value(), 1u);
}

class MultiCoreHierarchyTest : public ::testing::Test
{
  protected:
    MultiCoreHierarchyTest() : cfg_(makeCfg()), hier_(cfg_, 1) {}

    static SystemConfig
    makeCfg()
    {
        SystemConfig cfg = testConfig();
        cfg.coresPerHost = 2;
        return cfg;
    }

    SystemConfig cfg_;
    CacheHierarchy hier_;
};

TEST_F(MultiCoreHierarchyTest, WriteInvalidatesOtherCoresL1)
{
    hier_.fill(0, 5, HostState::M, false, 1);
    hier_.fill(1, 5, HostState::M, false, 1);
    EXPECT_EQ(hier_.lookup(1, 5).level, HitLevel::l1);
    hier_.recordWrite(0, 5, 2);
    // Core 1's L1 copy must be gone; the LLC still has the line.
    EXPECT_EQ(hier_.lookup(1, 5).level, HitLevel::llc);
    EXPECT_EQ(hier_.dataOf(5), 2u);
}

TEST_F(MultiCoreHierarchyTest, SharedLlcServesBothCores)
{
    hier_.fill(0, 5, HostState::S, false, 9);
    const auto r = hier_.lookup(1, 5);
    EXPECT_EQ(r.level, HitLevel::llc);
}

TEST_F(MultiCoreHierarchyTest, FusedAccessMatchesHistoricalSequence)
{
    // Two identical hierarchies: one driven through the historical
    // lookup/dataOf/fill/recordWrite sequence, one through the fused
    // cachedAccess/fillAccess pair. Hit levels, read data, the eviction
    // stream and every counter must agree step for step — the fused
    // primitives are pure scan fusion, not a semantic change.
    CacheHierarchy hist(cfg_, 1);
    CacheHierarchy fused(cfg_, 1);
    std::mt19937_64 rng(0xf00df00du);

    for (int step = 0; step < 60'000; ++step) {
        const auto core = static_cast<CoreId>(rng() % 2);
        // Small line space so hits, L1 back-invalidations and LLC
        // capacity evictions all occur frequently.
        const LineAddr line = rng() % 4096;
        const bool is_write = rng() % 4 == 0;
        const std::uint64_t wdata = rng();
        const std::uint64_t fill_data = rng();

        // Historical sequence (the pre-fusion localAccess shape).
        std::optional<CacheHierarchy::Eviction> hist_ev;
        HitLevel hist_level;
        std::uint64_t hist_read = 0;
        {
            const auto r = hist.lookup(core, line);
            hist_level = r.level;
            if (r.level == HitLevel::llc) {
                hist_ev = hist.fill(core, line, r.state, false,
                                    hist.dataOf(line));
            } else if (r.level == HitLevel::miss) {
                hist_ev = hist.fill(core, line, HostState::M, false,
                                    fill_data);
            }
            if (is_write)
                hist.recordWrite(core, line, wdata);
            else
                hist_read = r.level == HitLevel::miss ? fill_data
                                                      : hist.dataOf(line);
        }

        // Fused sequence.
        std::optional<CacheHierarchy::Eviction> fused_ev;
        const auto a = fused.cachedAccess(core, line, is_write, wdata);
        std::uint64_t fused_read = a.data;
        if (a.level == HitLevel::miss) {
            fused_ev = fused.fillAccess(core, line, HostState::M, false,
                                        fill_data, is_write, wdata);
            fused_read = fill_data;
        } else if (is_write) {
            ASSERT_TRUE(a.completed) << "M/ME fills must complete writes";
        }

        ASSERT_EQ(a.level, hist_level) << "step " << step;
        if (!is_write)
            ASSERT_EQ(fused_read, hist_read) << "step " << step;
        ASSERT_EQ(fused_ev.has_value(), hist_ev.has_value())
            << "step " << step;
        if (fused_ev) {
            ASSERT_EQ(fused_ev->line, hist_ev->line) << "step " << step;
            ASSERT_EQ(fused_ev->state, hist_ev->state);
            ASSERT_EQ(fused_ev->dirty, hist_ev->dirty);
            ASSERT_EQ(fused_ev->data, hist_ev->data);
        }
    }

    EXPECT_EQ(fused.l1Hits.value(), hist.l1Hits.value());
    EXPECT_EQ(fused.llcHits.value(), hist.llcHits.value());
    EXPECT_EQ(fused.misses.value(), hist.misses.value());
    EXPECT_EQ(fused.llcEvictions.value(), hist.llcEvictions.value());
}

} // namespace
} // namespace pipm
