/**
 * @file
 * Unit tests for the CXL link model (latency, bandwidth, directions).
 */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "cxl/link.hh"

namespace pipm
{
namespace
{

TEST(CxlLink, UnloadedLatencyIsPropagationPlusSerialisation)
{
    CxlLinkConfig cfg;   // 50 ns, 5 GB/s
    CxlLink link(cfg, "l");
    const Cycles lat = link.transfer(LinkDir::toDevice, CxlFlits::header,
                                     0);
    // 50 ns = 200 cycles propagation; 8 B at 1.25 B/cycle = ~6 cycles.
    EXPECT_GE(lat, nsToCycles(50.0));
    EXPECT_LE(lat, nsToCycles(50.0) + 10);
}

TEST(CxlLink, DataFlitsTakeLongerThanHeaders)
{
    CxlLink link(CxlLinkConfig{}, "l");
    const Cycles header = link.transfer(LinkDir::toDevice,
                                        CxlFlits::header, 0);
    const Cycles data = link.transfer(LinkDir::toHost, CxlFlits::data, 0);
    EXPECT_GT(data, header);
}

TEST(CxlLink, DirectionsDoNotContend)
{
    CxlLink link(CxlLinkConfig{}, "l");
    // Saturate toDevice; toHost must stay unloaded.
    for (int i = 0; i < 100; ++i)
        link.transfer(LinkDir::toDevice, CxlFlits::data, 0);
    const Cycles to_host = link.transfer(LinkDir::toHost, CxlFlits::data,
                                         0);
    EXPECT_LE(to_host, nsToCycles(50.0) + 60);
}

TEST(CxlLink, BandwidthQueuesBackToBackMessages)
{
    CxlLink link(CxlLinkConfig{}, "l");
    const Cycles first = link.transfer(LinkDir::toDevice, CxlFlits::data,
                                       0);
    Cycles last = first;
    for (int i = 0; i < 50; ++i)
        last = link.transfer(LinkDir::toDevice, CxlFlits::data, 0);
    // 51 data messages at the same instant must queue significantly.
    EXPECT_GT(last, first + 40 * (lineBytes / 1.25) * 0.9);
}

TEST(CxlLink, HigherBandwidthShortensQueueing)
{
    CxlLinkConfig slow;       // 5 GB/s
    CxlLinkConfig fast;
    fast.bytesPerNs = 10.0;   // x32 lanes (Fig. 15)
    CxlLink a(slow, "slow"), b(fast, "fast");
    Cycles slow_last = 0, fast_last = 0;
    for (int i = 0; i < 50; ++i) {
        slow_last = a.transfer(LinkDir::toDevice, CxlFlits::data, 0);
        fast_last = b.transfer(LinkDir::toDevice, CxlFlits::data, 0);
    }
    EXPECT_GT(slow_last, fast_last);
}

TEST(CxlLink, SwitchAddsLatency)
{
    CxlLinkConfig direct;
    CxlLinkConfig switched;
    switched.hasSwitch = true;
    CxlLink a(direct, "a"), b(switched, "b");
    const Cycles lat_direct = a.transfer(LinkDir::toHost,
                                         CxlFlits::header, 0);
    const Cycles lat_switched = b.transfer(LinkDir::toHost,
                                           CxlFlits::header, 0);
    EXPECT_EQ(lat_switched - lat_direct, nsToCycles(switched.switchNs));
}

TEST(CxlSwitch, SharedSwitchContendsAcrossLinks)
{
    CxlLinkConfig cfg;
    cfg.hasSwitch = true;
    CxlSwitch fabric(cfg.switchBytesPerNs, cfg.switchNs);
    CxlLink a(cfg, "a", &fabric), b(cfg, "b", &fabric);
    // Saturate the switch through link a; link b's messages now queue at
    // the shared stage even though its own wire is idle.
    for (int i = 0; i < 400; ++i)
        a.transfer(LinkDir::toDevice, CxlFlits::data, 0);
    const Cycles with_contention =
        b.transfer(LinkDir::toDevice, CxlFlits::data, 0);

    CxlSwitch fresh(cfg.switchBytesPerNs, cfg.switchNs);
    CxlLink c(cfg, "c", &fresh);
    const Cycles unloaded = c.transfer(LinkDir::toDevice, CxlFlits::data,
                                       0);
    EXPECT_GT(with_contention, unloaded);
    EXPECT_GT(fabric.messages.value(), 400u);
}

TEST(CxlSwitch, TraversalAddsLatencyWhenUnloaded)
{
    CxlLinkConfig with_switch;
    with_switch.hasSwitch = true;
    CxlSwitch fabric(with_switch.switchBytesPerNs, with_switch.switchNs);
    CxlLink a(with_switch, "a", &fabric);
    CxlLink plain(CxlLinkConfig{}, "plain");
    const Cycles switched =
        a.transfer(LinkDir::toHost, CxlFlits::header, 0);
    const Cycles direct =
        plain.transfer(LinkDir::toHost, CxlFlits::header, 0);
    EXPECT_GE(switched, direct + nsToCycles(with_switch.switchNs));
}

TEST(CxlLink, StatsTrackBytesPerDirection)
{
    CxlLink link(CxlLinkConfig{}, "l");
    link.transfer(LinkDir::toDevice, 100, 0);
    link.transfer(LinkDir::toHost, 30, 0);
    EXPECT_EQ(link.bytesToDevice.value(), 100u);
    EXPECT_EQ(link.bytesToHost.value(), 30u);
    EXPECT_EQ(link.messages.value(), 2u);
}

TEST(CxlLink, IdlePeriodsDrainTheQueue)
{
    CxlLink link(CxlLinkConfig{}, "l");
    for (int i = 0; i < 20; ++i)
        link.transfer(LinkDir::toDevice, CxlFlits::data, 0);
    // Much later, the wire is idle again.
    const Cycles lat = link.transfer(LinkDir::toDevice, CxlFlits::data,
                                     1'000'000);
    EXPECT_LE(lat, nsToCycles(50.0) + 60);
}

} // namespace
} // namespace pipm
