/**
 * @file
 * Device-metadata fault-domain tests (DESIGN.md §12): configuration
 * validation, the seeded corruption schedule and its independence from
 * the other fault streams, directory/remap quarantine semantics, the
 * migration-metadata redo journal, the per-page-group migration circuit
 * breaker, the scrub-and-repair / journal-replay / degraded-fallback
 * resolution paths under randomised schedules, and the corruption-off
 * bit-identity guarantees (stats.json bytes, measurement keys).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "coherence/device_directory.hh"
#include "common/logging.hh"
#include "fault/fault_injector.hh"
#include "os/address_space.hh"
#include "pipm/pipm_state.hh"
#include "sim/runner.hh"
#include "verify/fault_schedule.hh"
#include "workloads/catalog.hh"

namespace pipm
{
namespace
{

struct ThrowOnErrorGuard
{
    ThrowOnErrorGuard() { detail::throwOnError = true; }
    ~ThrowOnErrorGuard() { detail::throwOnError = false; }
};

/** Fault config with every rate zero (but injection "enabled"). */
FaultConfig
quietFaults(std::uint64_t seed = 1)
{
    FaultConfig f;
    f.enabled = true;
    f.seed = seed;
    return f;
}

std::unique_ptr<Workload>
smallWorkload()
{
    PatternParams p;
    p.name = "small";
    p.suite = "test";
    p.footprintFullBytes = 8ull << 30;
    p.partitionAffinity = 0.9;
    p.zipfTheta = 0.8;
    p.readFrac = 0.8;
    p.seqRunLines = 8;
    p.gapMean = 20;
    p.privateFrac = 0.2;
    p.globalHotFrac = 0.08;
    p.scanFrac = 0.5;
    p.scanSpanFrac = 0.05;
    p.phaseRefs = 20'000;
    return std::make_unique<SyntheticWorkload>(p, 256);
}

RunConfig
shortRun()
{
    RunConfig run;
    run.warmupRefsPerCore = 2'000;
    run.measureRefsPerCore = 8'000;
    run.footprintSampleEvery = 8'000;
    return run;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

TEST(MetaConfigValidate, RejectsNonsense)
{
    ThrowOnErrorGuard guard;

    FaultConfig f = quietFaults();
    f.metaCorruptMeanIntervalNs = -1.0;
    EXPECT_THROW(f.validate(), SimError);

    f = quietFaults();
    f.metaShadowHitFrac = 1.5;
    EXPECT_THROW(f.validate(), SimError);

    // Corruption that is never scrubbed never heals.
    f = quietFaults();
    f.metaCorruptMeanIntervalNs = 100.0;
    f.metaScrubIntervalNs = 0.0;
    EXPECT_THROW(f.validate(), SimError);

    f = quietFaults();
    f.metaCorruptMeanIntervalNs = 100.0;
    f.metaScrubBudget = 0;
    EXPECT_THROW(f.validate(), SimError);

    f = quietFaults();
    f.metaCorruptMeanIntervalNs = 100.0;
    f.metaCorruptMaxEvents = 0;
    EXPECT_THROW(f.validate(), SimError);

    f = quietFaults();
    f.metaCorruptMeanIntervalNs = 100.0;
    f.metaBreakerThreshold = 0;
    EXPECT_THROW(f.validate(), SimError);

    f = quietFaults();
    f.metaCorruptMeanIntervalNs = 100.0;
    f.metaBreakerGroupPages = 0;
    EXPECT_THROW(f.validate(), SimError);

    // Breaker knobs are inert (not validated) while corruption is off.
    f = quietFaults();
    f.metaBreakerThreshold = 0;
    EXPECT_NO_THROW(f.validate());

    // DoS guards on the pre-generated structures.
    f = quietFaults();
    f.metaCorruptMaxEvents = 1u << 20;
    EXPECT_THROW(f.validate(), SimError);

    f = quietFaults();
    f.metaJournalPages = 1u << 20;
    EXPECT_THROW(f.validate(), SimError);

    // The paper-default factory validates.
    EXPECT_NO_THROW(paperMetaFaultConfig(1).validate());
}

TEST(MetaSchedule, DisabledGeneratesNothing)
{
    FaultInjector inj(quietFaults(3), 2, 3);
    EXPECT_TRUE(inj.metaCorruptSchedule().empty());
    EXPECT_EQ(inj.nextMetaCorruptEvent(maxCycles), nullptr);
    // A breaker that can never be fed never sheds.
    EXPECT_FALSE(inj.migrationShed(7, 1'000'000));
}

TEST(MetaSchedule, SameSeedIsDeterministic)
{
    const FaultConfig f = paperMetaFaultConfig(9);
    FaultInjector a(f, 4, 9);
    FaultInjector b(f, 4, 9);
    const auto &sa = a.metaCorruptSchedule();
    const auto &sb = b.metaCorruptSchedule();
    ASSERT_EQ(sa.size(), sb.size());
    ASSERT_EQ(sa.size(), f.metaCorruptMaxEvents);
    bool any_shadow = false;
    bool any_clean = false;
    for (std::size_t i = 0; i < sa.size(); ++i) {
        EXPECT_EQ(sa[i].at, sb[i].at);
        EXPECT_EQ(sa[i].pick, sb[i].pick);
        EXPECT_EQ(sa[i].bits, sb[i].bits);
        EXPECT_EQ(sa[i].remapTarget, sb[i].remapTarget);
        EXPECT_EQ(sa[i].shadowHit, sb[i].shadowHit);
        EXPECT_NE(sa[i].bits, 0u);   // a corruption always flips a bit
        if (i > 0)
            EXPECT_GT(sa[i].at, sa[i - 1].at);
        any_shadow = any_shadow || sa[i].shadowHit;
        any_clean = any_clean || !sa[i].shadowHit;
    }
    // Paper defaults draw both repairable and unrepairable events.
    EXPECT_TRUE(any_shadow);
    EXPECT_TRUE(any_clean);
}

TEST(MetaSchedule, EnablingCorruptionLeavesOtherStreamsUntouched)
{
    // The meta schedule derives from its own seed stream ("meta-ev"), so
    // switching corruption on must not move a single crash or stall
    // event — the §12 machinery composes with §8/§11 without changing
    // what they replay.
    const std::uint64_t seed = 17;
    FaultConfig plain = paperSuspicionFaultConfig(seed);
    FaultConfig with_meta = paperSuspicionFaultConfig(seed);
    addPaperMetaFaults(with_meta);

    FaultInjector a(plain, 4, seed);
    FaultInjector b(with_meta, 4, seed);

    const auto &ca = a.crashSchedule();
    const auto &cb = b.crashSchedule();
    ASSERT_EQ(ca.size(), cb.size());
    ASSERT_FALSE(ca.empty());
    for (std::size_t i = 0; i < ca.size(); ++i) {
        EXPECT_EQ(ca[i].at, cb[i].at);
        EXPECT_EQ(ca[i].host, cb[i].host);
        EXPECT_EQ(ca[i].rejoin, cb[i].rejoin);
        EXPECT_EQ(ca[i].downUntil, cb[i].downUntil);
    }
    bool any_stall = false;
    for (unsigned h = 0; h < 4; ++h) {
        const auto &wa = a.stallWindows(static_cast<HostId>(h));
        EXPECT_EQ(wa, b.stallWindows(static_cast<HostId>(h)));
        any_stall = any_stall || !wa.empty();
    }
    EXPECT_TRUE(any_stall);
    EXPECT_TRUE(a.metaCorruptSchedule().empty());
    EXPECT_FALSE(b.metaCorruptSchedule().empty());
}

TEST(MetaQuarantine, DirectoryTracksAndClearsCorruption)
{
    DirectoryConfig dcfg;
    dcfg.sets = 2;
    dcfg.ways = 2;
    dcfg.slices = 2;
    DeviceDirectory dir(dcfg);

    DirEntry e;
    e.state = DevState::S;
    e.add(0);
    dir.allocate(42, e);

    // Untracked lines cannot be corrupted; tracked ones quarantine once.
    EXPECT_FALSE(dir.corruptEntry(7, 0xff, false));
    EXPECT_TRUE(dir.corruptEntry(42, 0xff, true));
    EXPECT_FALSE(dir.corruptEntry(42, 0x1, false));
    EXPECT_TRUE(dir.entryCorrupted(42));
    ASSERT_NE(dir.corruptionOf(42), nullptr);
    EXPECT_EQ(dir.corruptionOf(42)->bits, 0xffu);
    EXPECT_TRUE(dir.corruptionOf(42)->shadowHit);

    // The pristine image stays live: corrupted metadata is never
    // consumed, only quarantined beside the entry.
    ASSERT_NE(dir.lookup(42), nullptr);
    EXPECT_EQ(dir.lookup(42)->state, DevState::S);

    // Dropping the entry lifts the quarantine.
    dir.deallocate(42);
    EXPECT_FALSE(dir.entryCorrupted(42));
    EXPECT_EQ(dir.corruptedCount(), 0u);
}

TEST(MetaBreaker, TripsShedsAndHalfOpens)
{
    FaultConfig f = quietFaults(5);
    f.metaCorruptMeanIntervalNs = 1'000.0;   // enables the §12 machinery
    f.metaBreakerThreshold = 2;
    f.metaBreakerWindowNs = 100.0;
    f.metaBreakerCooldownNs = 200.0;
    f.metaBreakerGroupPages = 8;
    f.validate();
    FaultInjector inj(f, 2, 5);

    const Cycles window = nsToCycles(f.metaBreakerWindowNs);
    const Cycles cooldown = nsToCycles(f.metaBreakerCooldownNs);

    // One strike is below threshold; a second within the window trips.
    inj.noteMetaRepair(16, 10);
    EXPECT_FALSE(inj.migrationShed(16, 11));
    inj.noteMetaRepair(17, 20);   // same group: 17 / 8 == 16 / 8
    EXPECT_TRUE(inj.migrationShed(16, 21));
    EXPECT_TRUE(inj.migrationShed(23, 21));    // whole group is shed
    EXPECT_FALSE(inj.migrationShed(24, 21));   // next group is not
    EXPECT_EQ(inj.metaBreakerTrips.value(), 1u);

    // Still open during cool-down; half-opens after it elapses.
    EXPECT_TRUE(inj.migrationShed(16, 20 + cooldown - 1));
    inj.advanceBreakers(20 + cooldown + 1);
    EXPECT_FALSE(inj.migrationShed(16, 20 + cooldown + 2));
    EXPECT_EQ(inj.metaBreakerHalfOpens.value(), 1u);

    // A strike on probation re-trips immediately with a doubled
    // cool-down (exponential backoff).
    const Cycles t2 = 20 + cooldown + 10;
    inj.noteMetaRepair(16, t2);
    inj.noteMetaRepair(16, t2 + 1);
    EXPECT_TRUE(inj.migrationShed(16, t2 + 2));
    EXPECT_EQ(inj.metaBreakerTrips.value(), 2u);
    EXPECT_TRUE(inj.migrationShed(16, t2 + cooldown + 2));
    inj.advanceBreakers(t2 + 1 + 2 * cooldown + 1);
    EXPECT_FALSE(inj.migrationShed(16, t2 + 1 + 2 * cooldown + 2));

    // A full clean window after half-open resets the backoff exponent.
    const Cycles t3 = t2 + 1 + 2 * cooldown + 2;
    inj.advanceBreakers(t3 + window + 1);
    inj.noteMetaRepair(16, t3 + window + 10);
    inj.noteMetaRepair(16, t3 + window + 11);
    EXPECT_TRUE(inj.migrationShed(16, t3 + window + 12));
    // Re-tripped with the base cool-down again: open at +cooldown-1,
    // closed (after advance) at +cooldown+1.
    EXPECT_TRUE(
        inj.migrationShed(16, t3 + window + 11 + cooldown - 1));
    inj.advanceBreakers(t3 + window + 11 + cooldown + 1);
    EXPECT_FALSE(
        inj.migrationShed(16, t3 + window + 11 + cooldown + 2));
}

TEST(MetaJournal, CoversRecentMigrationsAndEvictsOldest)
{
    SystemConfig cfg = testConfig();
    AddressSpace space(cfg, 64 * pageBytes, 8 * pageBytes);
    PipmState state(cfg.pipm, cfg.numHosts, PipmMode::vote, space);
    state.reservePages(64, 0);
    state.enableJournal(2);

    auto promote = [&](PageFrame p, HostId h) {
        for (unsigned i = 0; i < cfg.pipm.migrationThreshold; ++i)
            state.deviceAccess(p, h);
        ASSERT_TRUE(state.hasLocalEntry(h, p));
    };

    promote(1, 0);
    EXPECT_TRUE(state.journalCovers(0, 1));
    promote(2, 0);
    EXPECT_TRUE(state.journalCovers(0, 2));
    EXPECT_EQ(state.journalLive(), 2u);

    // A third page overflows the two-page ring: page 1's records are the
    // oldest and get overwritten.
    promote(3, 0);
    EXPECT_FALSE(state.journalCovers(0, 1));
    EXPECT_TRUE(state.journalCovers(0, 2));
    EXPECT_TRUE(state.journalCovers(0, 3));

    // A line migration refreshes the page's records (moves it to the
    // ring's tail), so the other page is now the eviction victim.
    state.setLineMigrated(0, 2, 0);
    promote(4, 0);
    EXPECT_TRUE(state.journalCovers(0, 2));
    EXPECT_FALSE(state.journalCovers(0, 3));

    // Reclaim drops the page's records outright.
    state.crashReclaimPage(0, 2);
    EXPECT_FALSE(state.journalCovers(0, 2));
}

TEST(MetaQuarantine, RemapEntriesQuarantineBesidePristineState)
{
    SystemConfig cfg = testConfig();
    AddressSpace space(cfg, 64 * pageBytes, 8 * pageBytes);
    PipmState state(cfg.pipm, cfg.numHosts, PipmMode::vote, space);
    state.reservePages(64, 0);

    for (unsigned i = 0; i < cfg.pipm.migrationThreshold; ++i)
        state.deviceAccess(5, 1);
    ASSERT_TRUE(state.hasLocalEntry(1, 5));

    EXPECT_FALSE(state.corruptLocalEntry(0, 5, 0x2, false));   // no entry
    EXPECT_TRUE(state.corruptLocalEntry(1, 5, 0x2, false));
    EXPECT_FALSE(state.corruptLocalEntry(1, 5, 0x4, true));    // once
    EXPECT_TRUE(state.localEntryCorrupted(1, 5));
    EXPECT_EQ(state.corruptedCount(), 1u);
    ASSERT_NE(state.corruptionOf(1, 5), nullptr);
    EXPECT_FALSE(state.corruptionOf(1, 5)->shadowHit);

    // The quarantined entry still answers queries from its pristine
    // image (validated-on-read model); migration state is intact.
    state.setLineMigrated(1, 5, 3);
    EXPECT_TRUE(state.lineMigrated(1, 5, 3));

    // Reclaiming the page lifts the quarantine with it.
    state.crashReclaimPage(1, 5);
    EXPECT_FALSE(state.localEntryCorrupted(1, 5));
    EXPECT_EQ(state.corruptedCount(), 0u);
}

TEST(MetaSchedules, RandomisedCheckingExercisesAllResolutionPaths)
{
    SystemConfig cfg = testConfig();
    cfg.numHosts = 4;
    FaultCheckOptions opt;
    opt.withMetaCorruption = true;
    const FaultCheckResult r =
        checkFaultSchedules(cfg, Scheme::pipmFull, 2, 8'000, 1, opt);
    EXPECT_TRUE(r.ok) << r.violation;
    EXPECT_GT(r.metaCorruptions, 0u);
    EXPECT_GT(r.scrubRepairs, 0u);        // probe-and-rebuild happened
    EXPECT_GT(r.scrubUnrepairable, 0u);   // degraded fallback happened
    EXPECT_GT(r.breakerTrips, 0u);        // migration was shed
    EXPECT_GT(r.breakerHalfOpens, 0u);    // ... and recovered
}

TEST(MetaSchedules, ComposesWithCrashAndSuspicionSchedules)
{
    SystemConfig cfg = testConfig();
    cfg.numHosts = 4;
    FaultCheckOptions opt;
    opt.withCrashes = true;
    opt.withSuspicion = true;
    opt.withMetaCorruption = true;
    const FaultCheckResult r =
        checkFaultSchedules(cfg, Scheme::pipmFull, 2, 6'000, 1, opt);
    EXPECT_TRUE(r.ok) << r.violation;
    EXPECT_GT(r.crashes, 0u);
    EXPECT_GT(r.metaCorruptions, 0u);
}

TEST(MetaSchedules, SameSeedCheckerCountsAreDeterministic)
{
    SystemConfig cfg = testConfig();
    cfg.numHosts = 4;
    FaultCheckOptions opt;
    opt.withMetaCorruption = true;
    const FaultCheckResult a =
        checkFaultSchedules(cfg, Scheme::pipmFull, 1, 5'000, 7, opt);
    const FaultCheckResult b =
        checkFaultSchedules(cfg, Scheme::pipmFull, 1, 5'000, 7, opt);
    EXPECT_TRUE(a.ok) << a.violation;
    EXPECT_EQ(a.metaCorruptions, b.metaCorruptions);
    EXPECT_EQ(a.scrubRepairs, b.scrubRepairs);
    EXPECT_EQ(a.scrubUnrepairable, b.scrubUnrepairable);
    EXPECT_EQ(a.journalReplays, b.journalReplays);
    EXPECT_EQ(a.breakerTrips, b.breakerTrips);
    EXPECT_EQ(a.breakerHalfOpens, b.breakerHalfOpens);
    EXPECT_EQ(a.linesLost, b.linesLost);
}

TEST(MetaOff, MeasurementKeyAndStatsJsonAreUntouched)
{
    // Corruption off must be indistinguishable from a build that never
    // heard of §12: the measurement key gains no section (bench caches
    // stay valid) and stats.json is byte-identical (no conditionally
    // registered counters leak in).
    SystemConfig plain = testConfig();
    plain.fault = paperFaultConfig(3);

    SystemConfig tweaked = testConfig();
    tweaked.fault = paperFaultConfig(3);
    // Non-default §12 knobs with the master switch off...
    tweaked.fault.metaShadowHitFrac = 0.9;
    tweaked.fault.metaBreakerThreshold = 7;
    tweaked.fault.metaScrubBudget = 3;
    tweaked.fault.metaCorruptMeanIntervalNs = 0.0;

    EXPECT_EQ(plain.measurementKey(), tweaked.measurementKey());
    EXPECT_EQ(plain.measurementKey().find(",meta:"), std::string::npos);

    SystemConfig on = testConfig();
    on.fault = paperMetaFaultConfig(3);
    EXPECT_NE(on.measurementKey().find(",meta:"), std::string::npos);

    const std::string pa = testing::TempDir() + "pipm_meta_off_a.json";
    const std::string pb = testing::TempDir() + "pipm_meta_off_b.json";
    auto wl = smallWorkload();
    RunConfig run = shortRun();
    run.obsFromEnv = false;
    run.statsJsonPath = pa;
    runExperiment(plain, Scheme::pipmFull, *wl, run);
    run.statsJsonPath = pb;
    runExperiment(tweaked, Scheme::pipmFull, *wl, run);
    const std::string da = slurp(pa);
    EXPECT_EQ(da, slurp(pb));
    EXPECT_EQ(da.find("meta_"), std::string::npos);
    std::remove(pa.c_str());
    std::remove(pb.c_str());
}

TEST(MetaOn, CorruptionChangesOnlyItsOwnDomain)
{
    // A corruption-enabled run must still replay the identical crash and
    // stall schedules (checked at the injector level elsewhere); at the
    // run level it stays bit-for-bit deterministic and registers the
    // eight §12 counters.
    SystemConfig cfg = testConfig();
    cfg.fault = paperMetaFaultConfig(3);
    auto wl = smallWorkload();
    RunConfig run = shortRun();
    run.obsFromEnv = false;

    const std::string pa = testing::TempDir() + "pipm_meta_on_a.json";
    const std::string pb = testing::TempDir() + "pipm_meta_on_b.json";
    run.statsJsonPath = pa;
    const RunResult a = runExperiment(cfg, Scheme::pipmFull, *wl, run);
    run.statsJsonPath = pb;
    const RunResult b = runExperiment(cfg, Scheme::pipmFull, *wl, run);
    EXPECT_EQ(a.execCycles, b.execCycles);
    const std::string da = slurp(pa);
    EXPECT_EQ(da, slurp(pb));
    EXPECT_NE(da.find("meta_corruptions"), std::string::npos);
    EXPECT_NE(da.find("meta_scrub_checks"), std::string::npos);
    std::remove(pa.c_str());
    std::remove(pb.c_str());
}

} // namespace
} // namespace pipm
