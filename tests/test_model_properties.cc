/**
 * @file
 * Property tests over the reduced protocol model: random walks that
 * check the safety invariants at every step (a fuzz complement to the
 * exhaustive BFS), liveness-ish properties (a host can always eventually
 * read its own writes), and encoding stability.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "verify/checker.hh"

namespace pipm
{
namespace
{

/** Pick a uniformly random enabled event. */
bool
randomStep(ProtocolModel &model, ProtoState &s, Rng &rng,
           unsigned num_hosts)
{
    for (int attempts = 0; attempts < 64; ++attempts) {
        const ProtoEvent e =
            allProtoEvents[rng.below(allProtoEvents.size())];
        const auto h = static_cast<HostId>(rng.below(num_hosts));
        if (model.enabled(s, e, h)) {
            s = model.apply(s, e, h);
            return true;
        }
    }
    return false;
}

class RandomWalk : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(RandomWalk, InvariantsHoldAlongRandomTraces)
{
    const unsigned hosts = GetParam();
    ProtocolModel model(hosts);
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        Rng rng(seed * 7919);
        ProtoState s = model.initial();
        for (int step = 0; step < 2000; ++step) {
            ASSERT_TRUE(randomStep(model, s, rng, hosts));
            const std::string why = model.checkInvariants(s);
            ASSERT_TRUE(why.empty())
                << "seed " << seed << " step " << step << ": " << why
                << "\nstate: " << s.describe(hosts);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(HostCounts, RandomWalk,
                         ::testing::Values(2u, 3u, 4u));

TEST(ModelProperties, WriterAlwaysReadsItsOwnWrite)
{
    // After any random prefix, a write by h followed immediately by a
    // read at h must observe a latest copy at h.
    ProtocolModel model(3);
    Rng rng(99);
    for (int trial = 0; trial < 200; ++trial) {
        ProtoState s = model.initial();
        const int prefix = static_cast<int>(rng.below(50));
        for (int i = 0; i < prefix; ++i)
            randomStep(model, s, rng, 3);
        const auto h = static_cast<HostId>(rng.below(3));
        s = model.apply(s, ProtoEvent::write, h);
        s = model.apply(s, ProtoEvent::read, h);
        EXPECT_TRUE(s.host[h].latest) << s.describe(3);
        EXPECT_NE(s.host[h].cache, HostState::I);
    }
}

TEST(ModelProperties, ReadersConvergeToSharedState)
{
    // Every host reading the same line (with no writes in between)
    // leaves all of them with latest copies.
    ProtocolModel model(4);
    ProtoState s = model.initial();
    for (unsigned h = 0; h < 4; ++h)
        s = model.apply(s, ProtoEvent::read, static_cast<HostId>(h));
    for (unsigned h = 0; h < 4; ++h) {
        EXPECT_TRUE(s.host[h].latest);
        EXPECT_EQ(s.host[h].cache, HostState::S);
    }
    EXPECT_EQ(s.dir, DevState::S);
}

TEST(ModelProperties, MigrationRoundTripPreservesTheValue)
{
    // Write at h0, migrate the line to local DRAM, pull it to h1, write
    // there, migrate to h1's local memory after a re-promotion, then
    // read everywhere: the final value must follow the last writer.
    ProtocolModel model(2);
    ProtoState s = model.initial();
    s = model.apply(s, ProtoEvent::promote, 0);
    s = model.apply(s, ProtoEvent::write, 0);
    s = model.apply(s, ProtoEvent::evict, 0);    // case 1 -> I' at h0
    s = model.apply(s, ProtoEvent::write, 1);    // case 2 write: pull
    s = model.apply(s, ProtoEvent::revoke, 0);   // drop the stale entry
    s = model.apply(s, ProtoEvent::promote, 1);
    s = model.apply(s, ProtoEvent::evict, 1);    // case 1 at h1
    s = model.apply(s, ProtoEvent::read, 1);     // case 3
    EXPECT_TRUE(s.host[1].latest);
    s = model.apply(s, ProtoEvent::read, 0);     // case 6 (h1 holds ME)
    EXPECT_TRUE(s.host[0].latest);
    EXPECT_TRUE(model.checkInvariants(s).empty());
}

TEST(ModelProperties, EncodingRoundTripsThroughRandomWalks)
{
    // encode() must distinguish states that differ (no collisions along
    // a random walk trajectory: collisions would silently prune the BFS).
    ProtocolModel model(3);
    Rng rng(5);
    ProtoState s = model.initial();
    std::uint64_t prev = s.encode(3);
    for (int i = 0; i < 5000; ++i) {
        ProtoState before = s;
        randomStep(model, s, rng, 3);
        const std::uint64_t key = s.encode(3);
        if (!(s == before))
            EXPECT_NE(key, before.encode(3)) << s.describe(3);
        prev = key;
    }
    (void)prev;
}

TEST(ModelProperties, StateSpaceSizeIsStableAcrossRuns)
{
    const CheckResult a = checkProtocol(2);
    const CheckResult b = checkProtocol(2);
    EXPECT_EQ(a.statesExplored, b.statesExplored);
    EXPECT_EQ(a.transitions, b.transitions);
}

} // namespace
} // namespace pipm
