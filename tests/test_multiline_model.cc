/**
 * @file
 * Tests for the two-line page model: page-level promotion/revocation
 * coupling across lines, per-line independence, exhaustive checking,
 * and random-walk fuzzing.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "verify/multiline_model.hh"

namespace pipm
{
namespace
{

TEST(MultiLineModel, InitialStateIsClean)
{
    MultiLineModel model(2);
    EXPECT_TRUE(model.checkInvariants(model.initial()).empty());
}

TEST(MultiLineModel, LinesMigrateIndependently)
{
    MultiLineModel model(2);
    PageProtoState s = model.initial();
    s = model.apply(s, ProtoEvent::promote, 0, 0);
    // Line 0 migrates; line 1 stays in CXL memory.
    s = model.apply(s, ProtoEvent::write, 0, 0);
    s = model.apply(s, ProtoEvent::evict, 0, 0);
    EXPECT_TRUE(s.line[0].lineMigrated);
    EXPECT_FALSE(s.line[1].lineMigrated);
    EXPECT_TRUE(s.line[1].memLatest);
    EXPECT_TRUE(model.checkInvariants(s).empty());
}

TEST(MultiLineModel, RevocationMovesEveryMigratedLineBack)
{
    MultiLineModel model(2);
    PageProtoState s = model.initial();
    s = model.apply(s, ProtoEvent::promote, 0, 0);
    for (unsigned li = 0; li < 2; ++li) {
        s = model.apply(s, ProtoEvent::write, 0, li);
        s = model.apply(s, ProtoEvent::evict, 0, li);
    }
    ASSERT_TRUE(s.line[0].lineMigrated);
    ASSERT_TRUE(s.line[1].lineMigrated);

    s = model.apply(s, ProtoEvent::revoke, 0, 0);
    EXPECT_EQ(s.promotedTo, invalidHost);
    EXPECT_FALSE(s.line[0].lineMigrated);
    EXPECT_FALSE(s.line[1].lineMigrated);
    EXPECT_TRUE(s.line[0].memLatest);
    EXPECT_TRUE(s.line[1].memLatest);
    EXPECT_TRUE(model.checkInvariants(s).empty());
}

TEST(MultiLineModel, RevocationPullsMeLinesThroughTheCache)
{
    MultiLineModel model(2);
    PageProtoState s = model.initial();
    s = model.apply(s, ProtoEvent::promote, 0, 0);
    s = model.apply(s, ProtoEvent::write, 0, 0);
    s = model.apply(s, ProtoEvent::evict, 0, 0);
    s = model.apply(s, ProtoEvent::read, 0, 0);   // ME on line 0
    ASSERT_EQ(s.line[0].host[0].cache, HostState::ME);

    s = model.apply(s, ProtoEvent::revoke, 0, 0);
    EXPECT_EQ(s.line[0].host[0].cache, HostState::I);
    EXPECT_TRUE(s.line[0].memLatest);
    EXPECT_TRUE(model.checkInvariants(s).empty());
}

TEST(MultiLineModel, InterHostPullOnOneLineKeepsTheOtherMigrated)
{
    MultiLineModel model(2);
    PageProtoState s = model.initial();
    s = model.apply(s, ProtoEvent::promote, 0, 0);
    for (unsigned li = 0; li < 2; ++li) {
        s = model.apply(s, ProtoEvent::write, 0, li);
        s = model.apply(s, ProtoEvent::evict, 0, li);
    }
    s = model.apply(s, ProtoEvent::read, 1, 0);   // case 2 on line 0
    EXPECT_FALSE(s.line[0].lineMigrated);
    EXPECT_TRUE(s.line[1].lineMigrated);          // partial migration!
    EXPECT_EQ(s.promotedTo, 0);                   // entry persists
    EXPECT_TRUE(model.checkInvariants(s).empty());
}

TEST(MultiLineModel, PageEventsExpandOnlyOnce)
{
    MultiLineModel model(2);
    const PageProtoState s = model.initial();
    EXPECT_TRUE(model.enabled(s, ProtoEvent::promote, 0, 0));
    EXPECT_FALSE(model.enabled(s, ProtoEvent::promote, 0, 1));
}

TEST(MultiLineChecker, TwoHostsExhaustivelySafe)
{
    const CheckResult result = checkMultiLineProtocol(2);
    EXPECT_TRUE(result.ok) << result.violation;
    // Strictly more behaviour than the single-line space.
    EXPECT_GT(result.statesExplored, 100u);
}

TEST(MultiLineChecker, ThreeHostsExhaustivelySafe)
{
    const CheckResult result = checkMultiLineProtocol(3);
    EXPECT_TRUE(result.ok) << result.violation;
}

TEST(MultiLineModel, RandomWalkFuzz)
{
    MultiLineModel model(3);
    Rng rng(71);
    for (int trial = 0; trial < 5; ++trial) {
        PageProtoState s = model.initial();
        for (int step = 0; step < 3000; ++step) {
            // Pick a random enabled transition.
            for (int attempts = 0; attempts < 64; ++attempts) {
                const ProtoEvent e =
                    allProtoEvents[rng.below(allProtoEvents.size())];
                const auto h = static_cast<HostId>(rng.below(3));
                const auto li = static_cast<unsigned>(rng.below(2));
                if (model.enabled(s, e, h, li)) {
                    s = model.apply(s, e, h, li);
                    break;
                }
            }
            const std::string why = model.checkInvariants(s);
            ASSERT_TRUE(why.empty())
                << why << "\n" << s.describe(3) << " (step " << step
                << ")";
        }
    }
}

} // namespace
} // namespace pipm
