/**
 * @file
 * Tests for the observability layer (DESIGN.md §10): the JSON
 * writer/parser, the ObsTrace ring buffer, MetricsRegistry delta
 * semantics, and the stats.json export — schema validity, byte
 * determinism and the totals-match-RunResult accounting invariant.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.hh"
#include "obs/metrics_registry.hh"
#include "obs/stats_json.hh"
#include "obs/trace.hh"
#include "sim/runner.hh"
#include "workloads/catalog.hh"

namespace pipm
{
namespace
{

// ---- JSON writer/parser ------------------------------------------------

TEST(ObsJson, NumberFormattingIsLocaleFree)
{
    EXPECT_EQ(jsonNumber(0.0), "0");
    EXPECT_EQ(jsonNumber(1.5), "1.5");
    EXPECT_EQ(jsonNumber(-2.25), "-2.25");
    // Shortest round-trip form, never digit grouping.
    EXPECT_EQ(jsonNumber(1048576.0), "1048576");
}

TEST(ObsJson, QuoteEscapesControlAndSpecials)
{
    EXPECT_EQ(jsonQuote("plain"), "\"plain\"");
    EXPECT_EQ(jsonQuote("a\"b\\c"), "\"a\\\"b\\\\c\"");
    EXPECT_EQ(jsonQuote("a\nb\tc"), "\"a\\nb\\tc\"");
}

TEST(ObsJson, ParseRoundTripsCountersExactly)
{
    // 2^63 + 1 is not representable as a double; asU64 must use the raw
    // source text, not the double value.
    const std::string doc =
        "{\"big\": 9223372036854775809, \"arr\": [1, 2, 3],"
        " \"s\": \"x\", \"t\": true, \"n\": null}";
    const auto v = parseJson(doc);
    ASSERT_TRUE(v);
    EXPECT_EQ(v->find("big")->asU64(), 9223372036854775809ull);
    ASSERT_TRUE(v->find("arr")->isArray());
    EXPECT_EQ(v->find("arr")->arr.size(), 3u);
    EXPECT_EQ(v->find("arr")->arr[1].asU64(), 2u);
    EXPECT_EQ(v->find("s")->raw, "x");
    EXPECT_TRUE(v->find("t")->boolVal);
    EXPECT_TRUE(v->find("n")->isNull());
    EXPECT_EQ(v->find("missing"), nullptr);
}

TEST(ObsJson, ObjectsPreserveKeyOrder)
{
    const auto v = parseJson("{\"z\": 1, \"a\": 2, \"m\": 3}");
    ASSERT_TRUE(v);
    ASSERT_EQ(v->obj.size(), 3u);
    EXPECT_EQ(v->obj[0].first, "z");
    EXPECT_EQ(v->obj[1].first, "a");
    EXPECT_EQ(v->obj[2].first, "m");
}

TEST(ObsJson, ParseRejectsMalformedInput)
{
    std::string err;
    EXPECT_FALSE(parseJson("{\"a\": }", &err));
    EXPECT_FALSE(err.empty());
    EXPECT_FALSE(parseJson("{\"a\": 1} trailing", &err));
    EXPECT_FALSE(parseJson("[1, 2,]", &err));
    EXPECT_FALSE(parseJson("", &err));
    EXPECT_FALSE(parseJson("{\"unterminated", &err));
}

// ---- ObsTrace ring buffer ----------------------------------------------

TEST(ObsTrace, RecordsBelowCapacityInOrder)
{
    ObsTrace t(8);
    for (std::uint32_t i = 0; i < 5; ++i)
        t.record(ObsEventType::promotion, 100 + i, i, 0, i);
    EXPECT_EQ(t.recorded(), 5u);
    EXPECT_EQ(t.dropped(), 0u);
    const auto events = t.snapshot();
    ASSERT_EQ(events.size(), 5u);
    for (std::uint32_t i = 0; i < 5; ++i) {
        EXPECT_EQ(events[i].cycle, 100 + i);
        EXPECT_EQ(events[i].aux, i);
    }
}

TEST(ObsTrace, WrapKeepsNewestOldestFirst)
{
    ObsTrace t(4);
    for (std::uint32_t i = 0; i < 10; ++i)
        t.record(ObsEventType::revocation, i, i, 1, i);
    EXPECT_EQ(t.recorded(), 10u);
    EXPECT_EQ(t.dropped(), 6u);
    const auto events = t.snapshot();
    ASSERT_EQ(events.size(), 4u);
    // The four newest (6..9), oldest first.
    for (std::uint32_t i = 0; i < 4; ++i)
        EXPECT_EQ(events[i].aux, 6 + i);
}

TEST(ObsTrace, CapacityZeroClampsToOne)
{
    ObsTrace t(0);
    EXPECT_EQ(t.capacity(), 1u);
    t.record(ObsEventType::hostCrash, 1, 0, 2, 7);
    t.record(ObsEventType::hostRejoin, 2, 0, 2, 8);
    EXPECT_EQ(t.recorded(), 2u);
    EXPECT_EQ(t.dropped(), 1u);
    const auto events = t.snapshot();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].type, ObsEventType::hostRejoin);
}

TEST(ObsTrace, WatchedLinesAndReset)
{
    ObsTrace t(4);
    EXPECT_FALSE(t.lineWatched(42));
    t.watchLine(42);
    EXPECT_TRUE(t.lineWatched(42));
    EXPECT_FALSE(t.lineWatched(43));
    t.record(ObsEventType::dirTransition, 5, 42, 0, 0);
    t.reset();
    EXPECT_EQ(t.recorded(), 0u);
    EXPECT_EQ(t.dropped(), 0u);
    EXPECT_TRUE(t.snapshot().empty());
    // Watches survive a reset; only the ring is cleared.
    EXPECT_TRUE(t.lineWatched(42));
}

TEST(ObsTrace, EventTypeNamesAreStable)
{
    EXPECT_EQ(toString(ObsEventType::promotion), "promotion");
    EXPECT_EQ(toString(ObsEventType::lineAbort), "line_abort");
    EXPECT_EQ(toString(ObsEventType::dirTransition), "dir_transition");
    EXPECT_EQ(toString(ObsEventType::hostCrash), "host_crash");
}

// ---- MetricsRegistry ---------------------------------------------------

TEST(MetricsRegistry, IntervalDeltasSumToTotals)
{
    StatGroup grp("g");
    Counter c;
    Average a;
    grp.addCounter(&c, "c", "counter");
    grp.addAverage(&a, "a", "average");

    MetricsRegistry reg;
    reg.addGroup(grp);
    ASSERT_EQ(reg.schema().counters.size(), 1u);
    EXPECT_EQ(reg.schema().counters[0], "g.c");
    EXPECT_EQ(reg.schema().averages[0], "g.a");

    reg.begin();
    c.inc(3);
    a.sample(10.0);
    a.sample(20.0);
    reg.closeInterval(100, 1000);
    c.inc(5);
    reg.closeInterval(200, 2000);

    const auto &ivals = reg.intervals();
    ASSERT_EQ(ivals.size(), 2u);
    EXPECT_EQ(ivals[0].startAccess, 0u);
    EXPECT_EQ(ivals[0].endAccess, 100u);
    EXPECT_EQ(ivals[0].endCycle, 1000u);
    EXPECT_EQ(ivals[0].counterDeltas[0], 3u);
    EXPECT_DOUBLE_EQ(ivals[0].averageMeans[0], 15.0);
    EXPECT_EQ(ivals[1].counterDeltas[0], 5u);
    // No samples in interval 1: its in-interval mean is 0, not the
    // running mean.
    EXPECT_DOUBLE_EQ(ivals[1].averageMeans[0], 0.0);
    EXPECT_EQ(reg.counterTotal("g.c"), c.value());
    EXPECT_EQ(reg.counterTotal("nope"), 0u);
}

TEST(MetricsRegistry, BaselineAbsorbsPreMeasurementCounts)
{
    // The harmful tracker's counters are not reset at the warmup
    // boundary; begin() must snapshot them so interval deltas still sum
    // to the measured-phase increase only.
    StatGroup grp("g");
    Counter c;
    grp.addCounter(&c, "c", "counter");
    c.inc(1000);   // pre-measurement activity

    MetricsRegistry reg;
    reg.addGroup(grp);
    reg.begin();
    c.inc(7);
    reg.closeInterval(10, 10);
    ASSERT_EQ(reg.intervals().size(), 1u);
    EXPECT_EQ(reg.intervals()[0].counterDeltas[0], 7u);
    EXPECT_EQ(reg.counterTotal("g.c"), 7u);
}

TEST(MetricsRegistry, ZeroLengthFlushIsIgnored)
{
    StatGroup grp("g");
    Counter c;
    grp.addCounter(&c, "c", "counter");
    MetricsRegistry reg;
    reg.addGroup(grp);
    reg.begin();
    c.inc();
    reg.closeInterval(50, 500);
    // Final flush landing exactly on the last boundary: no empty
    // duplicate interval.
    reg.closeInterval(50, 500);
    EXPECT_EQ(reg.intervals().size(), 1u);
}

TEST(MetricsRegistry, PrefixDisambiguatesPerHostGroups)
{
    StatGroup link0("link"), link1("link");
    Counter c0, c1;
    link0.addCounter(&c0, "crc_errors", "x");
    link1.addCounter(&c1, "crc_errors", "x");
    MetricsRegistry reg;
    reg.addGroup(link0, "host0.");
    reg.addGroup(link1, "host1.");
    reg.begin();
    c1.inc(9);
    reg.closeInterval(1, 1);
    EXPECT_EQ(reg.counterTotal("host0.link.crc_errors"), 0u);
    EXPECT_EQ(reg.counterTotal("host1.link.crc_errors"), 9u);
}

// ---- stats.json export -------------------------------------------------

SystemConfig
smallSystem()
{
    SystemConfig cfg = testConfig();
    cfg.numHosts = 2;
    cfg.coresPerHost = 2;
    cfg.validate();
    return cfg;
}

RunConfig
obsRun(const std::string &path)
{
    RunConfig run;
    run.warmupRefsPerCore = 1'000;
    run.measureRefsPerCore = 4'000;
    run.footprintSampleEvery = 8'000;
    run.statsJsonPath = path;
    run.obsIntervalAccesses = 3'000;
    run.obsTraceCapacity = 64;
    run.obsWatchLines = "0,4096";
    run.obsFromEnv = false;   // tests must not react to the caller's env
    return run;
}

std::unique_ptr<Workload>
smallWorkload()
{
    PatternParams p;
    p.name = "small";
    p.suite = "test";
    p.footprintFullBytes = 8ull << 30;
    p.partitionAffinity = 0.9;
    p.zipfTheta = 0.8;
    p.readFrac = 0.8;
    p.seqRunLines = 8;
    p.gapMean = 20;
    p.privateFrac = 0.2;
    p.globalHotFrac = 0.08;
    p.scanFrac = 0.5;
    p.scanSpanFrac = 0.05;
    p.phaseRefs = 20'000;
    return std::make_unique<SyntheticWorkload>(p, 256);
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

TEST(StatsJson, ExportIsSchemaValidAndMatchesRunResult)
{
    const std::string path = testing::TempDir() + "pipm_stats_a.json";
    const SystemConfig cfg = smallSystem();
    auto wl = smallWorkload();
    const RunResult r =
        runExperiment(cfg, Scheme::pipmFull, *wl, obsRun(path));
    const std::string text = slurp(path);

    const auto errors = validateStatsJson(text);
    for (const auto &e : errors)
        ADD_FAILURE() << e;

    const auto doc = parseJson(text);
    ASSERT_TRUE(doc);
    EXPECT_EQ(doc->find("schema_version")->asU64(), 1u);
    const JsonValue *meta = doc->find("meta");
    ASSERT_TRUE(meta);
    EXPECT_EQ(meta->find("workload")->raw, "small");
    EXPECT_EQ(meta->find("scheme")->raw, "pipm");
    EXPECT_EQ(meta->find("seed")->asU64(), 42u);
    EXPECT_EQ(meta->find("interval_accesses")->asU64(), 3000u);

    // Totals section mirrors the RunResult exactly.
    const JsonValue *totals = doc->find("totals");
    ASSERT_TRUE(totals);
    EXPECT_EQ(totals->find("exec_cycles")->asU64(), r.execCycles);
    EXPECT_EQ(totals->find("shared_llc_misses")->asU64(),
              r.sharedLlcMisses);
    EXPECT_EQ(totals->find("pipm_promotions")->asU64(),
              r.pipmPromotions);

    // Interval accounting: counter columns sum to end-of-run totals.
    const JsonValue *intervals = doc->find("intervals");
    ASSERT_TRUE(intervals);
    const JsonValue *counters = intervals->find("counters");
    const JsonValue *samples = intervals->find("samples");
    ASSERT_TRUE(counters && samples);
    EXPECT_GE(samples->arr.size(), 2u);
    auto column_total = [&](const std::string &name) {
        std::uint64_t sum = 0;
        for (std::size_t i = 0; i < counters->arr.size(); ++i) {
            if (counters->arr[i].raw != name)
                continue;
            for (const JsonValue &s : samples->arr)
                sum += s.find("counters")->arr[i].asU64();
        }
        return sum;
    };
    EXPECT_EQ(column_total("system.shared_accesses"), r.sharedAccesses);
    EXPECT_EQ(column_total("system.shared_llc_misses"),
              r.sharedLlcMisses);
    EXPECT_EQ(column_total("pipm.promotions"), r.pipmPromotions);
    EXPECT_EQ(column_total("pipm.lines_in"), r.pipmLinesIn);

    // Tracing was on: the section exists and is internally consistent.
    const JsonValue *trace = doc->find("trace");
    ASSERT_TRUE(trace);
    EXPECT_EQ(trace->find("capacity")->asU64(), 64u);
    EXPECT_EQ(trace->find("events")->arr.size(),
              std::min<std::uint64_t>(64u,
                                      trace->find("recorded")->asU64()));
    std::remove(path.c_str());
}

TEST(StatsJson, SameSeedIsByteIdentical)
{
    const std::string pa = testing::TempDir() + "pipm_stats_b1.json";
    const std::string pb = testing::TempDir() + "pipm_stats_b2.json";
    const SystemConfig cfg = smallSystem();
    auto wl = smallWorkload();
    runExperiment(cfg, Scheme::pipmFull, *wl, obsRun(pa));
    runExperiment(cfg, Scheme::pipmFull, *wl, obsRun(pb));
    EXPECT_EQ(slurp(pa), slurp(pb));
    std::remove(pa.c_str());
    std::remove(pb.c_str());
}

TEST(StatsJson, SchemesWithoutPipmValidateToo)
{
    const std::string path = testing::TempDir() + "pipm_stats_c.json";
    const SystemConfig cfg = smallSystem();
    auto wl = smallWorkload();
    RunConfig run = obsRun(path);
    run.obsTraceCapacity = 0;   // no trace section
    runExperiment(cfg, Scheme::native, *wl, run);
    const std::string text = slurp(path);
    const auto errors = validateStatsJson(text);
    for (const auto &e : errors)
        ADD_FAILURE() << e;
    const auto doc = parseJson(text);
    ASSERT_TRUE(doc);
    EXPECT_EQ(doc->find("trace"), nullptr);
    std::remove(path.c_str());
}

TEST(StatsJson, ValidatorRejectsBrokenDocuments)
{
    EXPECT_FALSE(validateStatsJson("not json").empty());
    EXPECT_FALSE(validateStatsJson("{}").empty());
    EXPECT_FALSE(
        validateStatsJson("{\"schema_version\": 2}").empty());

    // A structurally complete document whose accounting lies: one
    // counter delta was tampered with, so the column no longer sums to
    // the total.
    const std::string path = testing::TempDir() + "pipm_stats_d.json";
    const SystemConfig cfg = smallSystem();
    auto wl = smallWorkload();
    RunConfig run = obsRun(path);
    run.obsTraceCapacity = 0;
    runExperiment(cfg, Scheme::pipmFull, *wl, run);
    std::string text = slurp(path);
    ASSERT_TRUE(validateStatsJson(text).empty());
    // Bump the first digit of totals.shared_accesses so the interval
    // column no longer sums to it. The quoted key with a colon only
    // occurs in the totals object (the interval schema names it
    // "system.shared_accesses").
    const auto pos = text.find("\"shared_accesses\": ");
    ASSERT_NE(pos, std::string::npos);
    const auto dpos = pos + std::string("\"shared_accesses\": ").size();
    text[dpos] = text[dpos] == '9' ? '8' : text[dpos] + 1;
    EXPECT_FALSE(validateStatsJson(text).empty());
    std::remove(path.c_str());
}

} // namespace
} // namespace pipm
