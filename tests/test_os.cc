/**
 * @file
 * Unit tests for the OS layer: frame allocators, the unified address
 * space, shared-page (GIM) migration and PIPM frame allocation.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/logging.hh"
#include "os/address_space.hh"

namespace pipm
{
namespace
{

class AddressSpaceTest : public ::testing::Test
{
  protected:
    AddressSpaceTest()
        : cfg_(testConfig()),
          space_(cfg_, 64 * pageBytes, 8 * pageBytes)
    {
    }

    SystemConfig cfg_;
    AddressSpace space_;
};

TEST(FrameAllocator, AllocatesSequentiallyThenRecycles)
{
    FrameAllocator alloc(100, 3);
    EXPECT_EQ(alloc.alloc(), 100u);
    EXPECT_EQ(alloc.alloc(), 101u);
    EXPECT_EQ(alloc.alloc(), 102u);
    EXPECT_FALSE(alloc.alloc());
    alloc.free(101);
    EXPECT_EQ(alloc.inUse(), 2u);
    EXPECT_EQ(alloc.alloc(), 101u);
}

TEST(FrameAllocator, FreeingForeignFramePanics)
{
    detail::throwOnError = true;
    FrameAllocator alloc(100, 3);
    EXPECT_THROW(alloc.free(99), SimError);
    detail::throwOnError = false;
}

TEST_F(AddressSpaceTest, SharedPagesStartInCxl)
{
    EXPECT_EQ(space_.sharedPages(), 64u);
    for (std::uint64_t i = 0; i < space_.sharedPages(); ++i) {
        const SharedMapping &m = space_.sharedMapping(i);
        EXPECT_EQ(m.gimHost, invalidHost);
        EXPECT_EQ(m.frame, m.cxlFrame);
        EXPECT_EQ(cfg_.regionOf(pageBase(m.frame)), AddrRegion::cxlPool);
    }
}

TEST_F(AddressSpaceTest, SharedFramesAreDistinct)
{
    std::set<PageFrame> frames;
    for (std::uint64_t i = 0; i < space_.sharedPages(); ++i)
        frames.insert(space_.sharedFrame(i));
    EXPECT_EQ(frames.size(), space_.sharedPages());
}

TEST_F(AddressSpaceTest, ReverseMapFindsHomeFrames)
{
    const PageFrame f = space_.sharedFrame(5);
    auto idx = space_.sharedIndexOf(f);
    ASSERT_TRUE(idx);
    EXPECT_EQ(*idx, 5u);
    EXPECT_FALSE(space_.sharedIndexOf(f + space_.sharedPages() + 10));
}

TEST_F(AddressSpaceTest, MigrationMovesPageIntoHostLocal)
{
    ASSERT_TRUE(space_.migrateSharedToHost(3, 1));
    const SharedMapping &m = space_.sharedMapping(3);
    EXPECT_EQ(m.gimHost, 1);
    EXPECT_EQ(cfg_.regionOf(pageBase(m.frame)), AddrRegion::hostLocal);
    EXPECT_EQ(cfg_.homeHostOf(pageBase(m.frame)), 1);
    EXPECT_EQ(space_.migratedFramesOn(1), 1u);
    // The reverse map follows the move.
    auto idx = space_.sharedIndexOf(m.frame);
    ASSERT_TRUE(idx);
    EXPECT_EQ(*idx, 3u);
    // The home CXL frame no longer reverse-maps.
    EXPECT_FALSE(space_.sharedIndexOf(m.cxlFrame));
}

TEST_F(AddressSpaceTest, DemotionRestoresHomeFrame)
{
    ASSERT_TRUE(space_.migrateSharedToHost(3, 1));
    const PageFrame home = space_.sharedMapping(3).cxlFrame;
    space_.demoteSharedToCxl(3);
    EXPECT_EQ(space_.sharedFrame(3), home);
    EXPECT_EQ(space_.sharedMapping(3).gimHost, invalidHost);
    EXPECT_EQ(space_.migratedFramesOn(1), 0u);
}

TEST_F(AddressSpaceTest, MigrationFailsWhenLocalMemoryExhausted)
{
    const std::uint64_t budget =
        cfg_.localBytesPerHost() / pageBytes - 8;   // minus private pages
    std::uint64_t migrated = 0;
    for (std::uint64_t i = 0; i < space_.sharedPages(); ++i) {
        if (!space_.migrateSharedToHost(i, 0))
            break;
        ++migrated;
    }
    EXPECT_LE(migrated, budget);
    EXPECT_EQ(space_.migratedFramesOn(0), migrated);
}

TEST_F(AddressSpaceTest, HostToHostMoveReleasesOldFrame)
{
    ASSERT_TRUE(space_.migrateSharedToHost(2, 0));
    ASSERT_TRUE(space_.migrateSharedToHost(2, 1));
    EXPECT_EQ(space_.migratedFramesOn(0), 0u);
    EXPECT_EQ(space_.migratedFramesOn(1), 1u);
    EXPECT_EQ(space_.sharedMapping(2).gimHost, 1);
}

TEST_F(AddressSpaceTest, PipmFramesComeFromTheSamePool)
{
    auto f = space_.allocPipmFrame(0);
    ASSERT_TRUE(f);
    EXPECT_EQ(cfg_.homeHostOf(pageBase(*f)), 0);
    EXPECT_EQ(space_.migratedFramesOn(0), 1u);
    space_.freePipmFrame(0, *f);
    EXPECT_EQ(space_.migratedFramesOn(0), 0u);
}

TEST_F(AddressSpaceTest, PrivateAddressesAreHostLocal)
{
    const PhysAddr pa = space_.privateAddr(1, 100);
    EXPECT_EQ(cfg_.regionOf(pa), AddrRegion::hostLocal);
    EXPECT_EQ(cfg_.homeHostOf(pa), 1);
}

TEST_F(AddressSpaceTest, PrivateOutOfRangePanics)
{
    detail::throwOnError = true;
    EXPECT_THROW(space_.privateAddr(0, 8 * pageBytes), SimError);
    detail::throwOnError = false;
}

TEST(AddressSpace, RejectsOversizedHeap)
{
    detail::throwOnError = true;
    SystemConfig cfg = testConfig();
    EXPECT_THROW(AddressSpace(cfg, cfg.cxlPoolBytes() + pageBytes,
                              pageBytes),
                 SimError);
    detail::throwOnError = false;
}

} // namespace
} // namespace pipm
