/**
 * @file
 * Unit and property tests for the PIPM remapping state: the majority-vote
 * policy (§4.2), promotion/revocation, line bitmaps and the HW-static
 * mode.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "os/address_space.hh"
#include "pipm/pipm_state.hh"

namespace pipm
{
namespace
{

class PipmStateTest : public ::testing::Test
{
  protected:
    PipmStateTest()
        : cfg_(testConfig()),
          space_(cfg_, 64 * pageBytes, 8 * pageBytes),
          state_(cfg_.pipm, cfg_.numHosts, PipmMode::vote, space_)
    {
    }

    /** Feed `n` device accesses from host h to page p. */
    VoteOutcome
    feed(PageFrame p, HostId h, unsigned n)
    {
        VoteOutcome out;
        for (unsigned i = 0; i < n; ++i) {
            const VoteOutcome o = state_.deviceAccess(p, h);
            if (o.promoted)
                out = o;
        }
        return out;
    }

    SystemConfig cfg_;
    AddressSpace space_;
    PipmState state_;
};

TEST_F(PipmStateTest, ThresholdAccessesPromote)
{
    const VoteOutcome out = feed(1, 0, cfg_.pipm.migrationThreshold);
    EXPECT_TRUE(out.promoted);
    EXPECT_EQ(out.promotedTo, 0);
    EXPECT_EQ(state_.migratedHostOf(1), 0);
    EXPECT_TRUE(state_.hasLocalEntry(0, 1));
    EXPECT_EQ(state_.promotions.value(), 1u);
}

TEST_F(PipmStateTest, BelowThresholdDoesNotPromote)
{
    feed(1, 0, cfg_.pipm.migrationThreshold - 1);
    EXPECT_EQ(state_.migratedHostOf(1), invalidHost);
}

TEST_F(PipmStateTest, BalancedTrafficNeverPromotes)
{
    // Alternating hosts keep the Boyer-Moore counter pinned near zero.
    for (unsigned i = 0; i < 200; ++i)
        state_.deviceAccess(7, static_cast<HostId>(i % 2));
    EXPECT_EQ(state_.migratedHostOf(7), invalidHost);
}

TEST_F(PipmStateTest, MajorityMustExceedAllOthersCombined)
{
    // Pattern: h0, h0, h1 repeated. Net drift for h0 is +1 per 3
    // accesses, so it eventually fires; strict alternation would not.
    for (unsigned i = 0; i < 3 * cfg_.pipm.migrationThreshold; ++i) {
        const HostId h = (i % 3 == 2) ? HostId(1) : HostId(0);
        state_.deviceAccess(9, h);
    }
    EXPECT_EQ(state_.migratedHostOf(9), 0);
}

TEST_F(PipmStateTest, BoyerMooreCandidateSwitch)
{
    // h0 builds 3 votes, h1 drains them and takes over.
    feed(4, 0, 3);
    feed(4, 1, 3);   // counter back to zero
    const VoteOutcome out = feed(4, 1, cfg_.pipm.migrationThreshold);
    EXPECT_TRUE(out.promoted);
    EXPECT_EQ(out.promotedTo, 1);
}

TEST_F(PipmStateTest, GlobalCounterSaturatesAtSixBits)
{
    feed(2, 0, 1000);
    EXPECT_LE(state_.globalEntry(2).counter, 63);
}

TEST_F(PipmStateTest, LineBitmapTracksMigration)
{
    feed(1, 0, cfg_.pipm.migrationThreshold);
    EXPECT_FALSE(state_.lineMigrated(0, 1, 5));
    state_.setLineMigrated(0, 1, 5);
    EXPECT_TRUE(state_.lineMigrated(0, 1, 5));
    EXPECT_EQ(state_.migratedLinesOn(0), 1u);
    const PhysAddr lpa = state_.localLineAddr(0, 1, 5);
    EXPECT_EQ(cfg_.homeHostOf(lpa), 0);
    EXPECT_EQ(lineInPage(lpa), 5u);
    state_.clearLineMigrated(0, 1, 5);
    EXPECT_FALSE(state_.lineMigrated(0, 1, 5));
    EXPECT_EQ(state_.linesBack.value(), 1u);
}

TEST_F(PipmStateTest, DoubleMigrateSameLinePanics)
{
    detail::throwOnError = true;
    feed(1, 0, cfg_.pipm.migrationThreshold);
    state_.setLineMigrated(0, 1, 5);
    EXPECT_THROW(state_.setLineMigrated(0, 1, 5), SimError);
    detail::throwOnError = false;
}

TEST_F(PipmStateTest, LocalCounterStartsAtThresholdAndRevokesAtZero)
{
    feed(1, 0, cfg_.pipm.migrationThreshold);
    state_.setLineMigrated(0, 1, 3);
    // Drain the 4-bit local counter with inter-host accesses.
    InterHostOutcome out;
    unsigned decrements = 0;
    do {
        out = state_.interHostAccess(0, 1);
        ++decrements;
        ASSERT_LT(decrements, 100u);
    } while (!out.revoked);
    EXPECT_EQ(decrements, cfg_.pipm.migrationThreshold);
    const std::uint64_t bitmap = state_.revoke(0, 1);
    EXPECT_EQ(bitmap, 1ull << 3);
    EXPECT_FALSE(state_.hasLocalEntry(0, 1));
    EXPECT_EQ(state_.migratedHostOf(1), invalidHost);
    EXPECT_EQ(state_.migratedLinesOn(0), 0u);
    EXPECT_EQ(state_.revocations.value(), 1u);
}

TEST_F(PipmStateTest, LocalAccessesRechargeTheCounter)
{
    feed(1, 0, cfg_.pipm.migrationThreshold);
    // Interleave local and inter-host accesses 1:1 -> never revokes.
    for (unsigned i = 0; i < 50; ++i) {
        state_.localOwnerAccess(0, 1);
        EXPECT_FALSE(state_.interHostAccess(0, 1).revoked);
    }
    EXPECT_TRUE(state_.hasLocalEntry(0, 1));
}

TEST_F(PipmStateTest, RevocationFreesTheLocalFrame)
{
    feed(1, 0, cfg_.pipm.migrationThreshold);
    const std::uint64_t used = space_.migratedFramesOn(0);
    EXPECT_EQ(used, 1u);
    state_.revoke(0, 1);
    EXPECT_EQ(space_.migratedFramesOn(0), 0u);
}

TEST_F(PipmStateTest, NoRepromotionWhileMigrated)
{
    feed(1, 0, cfg_.pipm.migrationThreshold);
    const VoteOutcome again = feed(1, 1, 100);
    EXPECT_FALSE(again.promoted);
    EXPECT_EQ(state_.migratedHostOf(1), 0);
}

TEST(PipmStaticMode, StaticMappingAndNoRevocation)
{
    SystemConfig cfg = testConfig();
    AddressSpace space(cfg, 64 * pageBytes, 8 * pageBytes);
    PipmState state(cfg.pipm, cfg.numHosts, PipmMode::staticMap, space);

    // Page p belongs to host p % numHosts; only that host instantiates.
    const PageFrame page_for_h1 = 3;   // 3 % 2 == 1
    EXPECT_FALSE(state.deviceAccess(page_for_h1, 0).promoted);
    const VoteOutcome out = state.deviceAccess(page_for_h1, 1);
    EXPECT_TRUE(out.promoted);
    EXPECT_EQ(out.promotedTo, 1);
    // Inter-host accesses never revoke the static mapping.
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(state.interHostAccess(1, page_for_h1).revoked);
}

/**
 * Property: the hardware vote fires only when some host's accesses
 * exceed all others combined within the counter dynamics — in particular
 * it never fires for a page whose per-host shares are all below 50%
 * by a solid margin over a long uniform-random stream.
 */
TEST(PipmVoteProperty, UniformTrafficDoesNotPromote)
{
    SystemConfig cfg = testConfig();
    for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
        AddressSpace space(cfg, 64 * pageBytes, 8 * pageBytes);
        PipmState state(cfg.pipm, cfg.numHosts, PipmMode::vote, space);
        Rng rng(seed);
        unsigned promotions = 0;
        for (int i = 0; i < 20000; ++i) {
            const auto h = static_cast<HostId>(rng.below(cfg.numHosts));
            if (state.deviceAccess(11, h).promoted)
                ++promotions;
        }
        // With 2 hosts at 50/50 the random walk can occasionally brush
        // the threshold; it must stay rare.
        EXPECT_LE(promotions, 1u) << "seed " << seed;
    }
}

TEST_F(PipmStateTest, DisabledPagesAreNeverPromoted)
{
    state_.setMigrationAllowed(1, false);
    feed(1, 0, 100);
    EXPECT_EQ(state_.migratedHostOf(1), invalidHost);
    EXPECT_FALSE(state_.hasLocalEntry(0, 1));
    // Re-enabling restores normal behaviour.
    state_.setMigrationAllowed(1, true);
    EXPECT_TRUE(state_.migrationAllowed(1));
    feed(1, 0, cfg_.pipm.migrationThreshold);
    EXPECT_EQ(state_.migratedHostOf(1), 0);
}

TEST_F(PipmStateTest, DisablingOnePageDoesNotAffectOthers)
{
    state_.setMigrationAllowed(1, false);
    feed(2, 0, cfg_.pipm.migrationThreshold);
    EXPECT_EQ(state_.migratedHostOf(2), 0);
}

/** Property: a 60%-dominant host always wins eventually. */
TEST(PipmVoteProperty, DominantHostEventuallyPromotes)
{
    SystemConfig cfg = testConfig();
    for (std::uint64_t seed : {10ull, 20ull, 30ull}) {
        AddressSpace space(cfg, 64 * pageBytes, 8 * pageBytes);
        PipmState state(cfg.pipm, cfg.numHosts, PipmMode::vote, space);
        Rng rng(seed);
        bool promoted = false;
        for (int i = 0; i < 5000 && !promoted; ++i) {
            const HostId h = rng.chance(0.65) ? HostId(0) : HostId(1);
            promoted = state.deviceAccess(13, h).promoted;
        }
        EXPECT_TRUE(promoted) << "seed " << seed;
    }
}

} // namespace
} // namespace pipm
