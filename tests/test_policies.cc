/**
 * @file
 * Unit tests for the OS migration policies: Nomad (recency), Memtis
 * (frequency + budget), HeMem (threshold) and OS-skew (majority vote).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "migration/hemem.hh"
#include "migration/memtis.hh"
#include "migration/nomad.hh"
#include "migration/os_skew.hh"

namespace pipm
{
namespace
{

constexpr std::uint64_t pages = 64;
constexpr unsigned hosts = 2;

EpochContext
ctxOf(std::uint64_t budget = 32, unsigned cap = 16, unsigned hot = 8)
{
    EpochContext ctx;
    ctx.sharedPages = pages;
    ctx.numHosts = hosts;
    ctx.localBudgetPages = budget;
    ctx.maxPagesPerEpoch = cap;
    ctx.hotThreshold = hot;
    ctx.usedFramesPerHost.assign(hosts, 0);
    return ctx;
}

std::vector<HostId>
noneMigrated()
{
    return std::vector<HostId>(pages, invalidHost);
}

bool
plansPromotion(const EpochPlan &plan, std::uint64_t page, HostId target)
{
    return std::any_of(plan.promotions.begin(), plan.promotions.end(),
                       [&](const Promotion &p) {
                           return p.sharedIdx == page &&
                                  p.target == target;
                       });
}

TEST(EpochCounts, RecordsAndRolls)
{
    EpochCounts counts(pages, hosts);
    counts.record(3, 0);
    counts.record(3, 0);
    counts.record(3, 1);
    EXPECT_EQ(counts.count(3, 0), 2u);
    EXPECT_EQ(counts.total(3), 3u);
    EXPECT_EQ(counts.dominant(3), 0);
    EXPECT_EQ(counts.touched().size(), 1u);
    counts.rollEpoch();
    EXPECT_EQ(counts.count(3, 0), 0u);
    EXPECT_TRUE(counts.touched().empty());
}

TEST(Nomad, PromotesOnSecondConsecutiveEpoch)
{
    NomadPolicy policy(pages, hosts);
    auto migrated = noneMigrated();

    for (int i = 0; i < 6; ++i)
        policy.recordAccess(5, 0);
    EpochPlan first = policy.epoch(ctxOf(), migrated);
    EXPECT_TRUE(first.promotions.empty());   // first epoch: not yet

    for (int i = 0; i < 6; ++i)
        policy.recordAccess(5, 0);
    EpochPlan second = policy.epoch(ctxOf(), migrated);
    EXPECT_TRUE(plansPromotion(second, 5, 0));
}

TEST(Nomad, IncidentalTouchesDoNotPromote)
{
    NomadPolicy policy(pages, hosts);
    auto migrated = noneMigrated();
    policy.recordAccess(5, 0);
    policy.epoch(ctxOf(), migrated);
    policy.recordAccess(5, 0);   // below the hint-fault rate limit
    EpochPlan plan = policy.epoch(ctxOf(), migrated);
    EXPECT_TRUE(plan.promotions.empty());
}

TEST(Nomad, DemotesAfterIdleEpochs)
{
    NomadPolicy policy(pages, hosts);
    auto migrated = noneMigrated();
    for (int i = 0; i < 6; ++i)
        policy.recordAccess(5, 0);
    policy.epoch(ctxOf(), migrated);
    for (int i = 0; i < 6; ++i)
        policy.recordAccess(5, 0);
    policy.epoch(ctxOf(), migrated);
    migrated[5] = 0;   // the system executed the promotion
    // Four epochs with no access to page 5.
    policy.epoch(ctxOf(), migrated);
    policy.epoch(ctxOf(), migrated);
    policy.epoch(ctxOf(), migrated);
    EpochPlan plan = policy.epoch(ctxOf(), migrated);
    EXPECT_EQ(std::count(plan.demotions.begin(), plan.demotions.end(),
                         5ull),
              1);
}

TEST(Nomad, RespectsBudget)
{
    NomadPolicy policy(pages, hosts);
    auto migrated = noneMigrated();
    for (std::uint64_t p = 0; p < 32; ++p)
        policy.recordAccess(p, 0);
    policy.epoch(ctxOf(/*budget=*/4, /*cap=*/64), migrated);
    for (std::uint64_t p = 0; p < 32; ++p)
        policy.recordAccess(p, 0);
    EpochPlan plan = policy.epoch(ctxOf(4, 64), migrated);
    EXPECT_LE(plan.promotions.size(), 4u);
}

TEST(Memtis, RanksHotterPagesFirstUnderBatchCap)
{
    MemtisPolicy policy(pages, hosts);
    auto migrated = noneMigrated();
    for (int i = 0; i < 50; ++i)
        policy.recordAccess(1, 0);
    for (int i = 0; i < 5; ++i)
        policy.recordAccess(2, 0);
    EpochPlan plan = policy.epoch(ctxOf(32, /*cap=*/1), migrated);
    ASSERT_EQ(plan.promotions.size(), 1u);
    EXPECT_EQ(plan.promotions[0].sharedIdx, 1u);
}

TEST(Memtis, TargetsDominantHost)
{
    MemtisPolicy policy(pages, hosts);
    auto migrated = noneMigrated();
    for (int i = 0; i < 10; ++i)
        policy.recordAccess(4, 1);
    policy.recordAccess(4, 0);
    EpochPlan plan = policy.epoch(ctxOf(), migrated);
    EXPECT_TRUE(plansPromotion(plan, 4, 1));
}

TEST(Memtis, DemotesColdPagesUnderPressure)
{
    MemtisPolicy policy(pages, hosts);
    auto migrated = noneMigrated();
    // Budget 4, all used by host 0; page 9 resident but cold.
    for (std::uint64_t p = 9; p < 13; ++p)
        migrated[p] = 0;
    EpochContext ctx = ctxOf(/*budget=*/4, /*cap=*/16);
    ctx.usedFramesPerHost[0] = 4;
    policy.recordAccess(20, 0);
    EpochPlan plan = policy.epoch(ctx, migrated);
    EXPECT_FALSE(plan.demotions.empty());
}

TEST(Hemem, PromotesAboveSampledThreshold)
{
    HememPolicy policy(pages, hosts);
    auto migrated = noneMigrated();
    // HeMem samples one in eight accesses, so crossing an effective
    // threshold of `hot` needs ~8*hot raw accesses.
    for (int i = 0; i < 8 * 8 + 8; ++i)
        policy.recordAccess(6, 1);
    EpochPlan plan = policy.epoch(ctxOf(32, 16, /*hot=*/8), migrated);
    EXPECT_TRUE(plansPromotion(plan, 6, 1));
}

TEST(Hemem, IgnoresColdPages)
{
    HememPolicy policy(pages, hosts);
    auto migrated = noneMigrated();
    for (int i = 0; i < 8; ++i)
        policy.recordAccess(6, 1);   // ~1 sampled access
    EpochPlan plan = policy.epoch(ctxOf(32, 16, 8), migrated);
    EXPECT_TRUE(plan.promotions.empty());
}

TEST(OsSkew, FiresLikeTheHardwareVote)
{
    OsSkewPolicy policy(pages, hosts, /*threshold=*/8);
    auto migrated = noneMigrated();
    for (int i = 0; i < 8; ++i)
        policy.recordAccess(3, 0);
    EpochPlan plan = policy.epoch(ctxOf(), migrated);
    EXPECT_TRUE(plansPromotion(plan, 3, 0));
}

TEST(OsSkew, BalancedTrafficDoesNotFire)
{
    OsSkewPolicy policy(pages, hosts, 8);
    auto migrated = noneMigrated();
    for (int i = 0; i < 200; ++i)
        policy.recordAccess(3, static_cast<HostId>(i % 2));
    EpochPlan plan = policy.epoch(ctxOf(), migrated);
    EXPECT_TRUE(plan.promotions.empty());
}

TEST(OsSkew, DrainedVoteDemotesMigratedPage)
{
    OsSkewPolicy policy(pages, hosts, 8);
    auto migrated = noneMigrated();
    for (int i = 0; i < 8; ++i)
        policy.recordAccess(3, 0);
    policy.epoch(ctxOf(), migrated);
    migrated[3] = 0;
    // Another host drains the vote back to zero.
    for (int i = 0; i < 10; ++i)
        policy.recordAccess(3, 1);
    EpochPlan plan = policy.epoch(ctxOf(), migrated);
    EXPECT_EQ(std::count(plan.demotions.begin(), plan.demotions.end(),
                         3ull),
              1);
}

TEST(OsSkew, StaleFiringRevalidatedAtEpoch)
{
    OsSkewPolicy policy(pages, hosts, 8);
    auto migrated = noneMigrated();
    for (int i = 0; i < 8; ++i)
        policy.recordAccess(3, 0);      // fires
    for (int i = 0; i < 8; ++i)
        policy.recordAccess(3, 1);      // drains to zero before the epoch
    EpochPlan plan = policy.epoch(ctxOf(), migrated);
    EXPECT_TRUE(plan.promotions.empty());
}

} // namespace
} // namespace pipm
