/**
 * @file
 * Unit tests for the remapping caches and the memory image.
 */

#include <gtest/gtest.h>

#include "mem/memory_image.hh"
#include "pipm/remap_cache.hh"

namespace pipm
{
namespace
{

TEST(RemapCache, MissThenFillThenHit)
{
    RemapCache cache(1024, 4, 4, 8, "rc");
    EXPECT_FALSE(cache.lookup(42));
    cache.fill(42);
    EXPECT_TRUE(cache.lookup(42));
    EXPECT_EQ(cache.hits.value(), 1u);
    EXPECT_EQ(cache.missCount.value(), 1u);
}

TEST(RemapCache, InvalidateForcesRewalk)
{
    RemapCache cache(1024, 4, 4, 8, "rc");
    cache.fill(42);
    cache.invalidate(42);
    EXPECT_FALSE(cache.lookup(42));
}

TEST(RemapCache, CapacityBoundsResidentEntries)
{
    // 64 bytes / 4 B entries = 16 entries.
    RemapCache cache(64, 4, 4, 8, "rc");
    for (PageFrame p = 0; p < 64; ++p) {
        if (!cache.lookup(p))
            cache.fill(p);
    }
    unsigned resident = 0;
    for (PageFrame p = 0; p < 64; ++p)
        resident += cache.lookup(p);
    EXPECT_LE(resident, 16u);
}

TEST(RemapCache, InfiniteModeAlwaysHits)
{
    RemapCache cache(64, 4, 4, 8, "rc", /*infinite=*/true);
    for (PageFrame p = 0; p < 1000; ++p)
        EXPECT_TRUE(cache.lookup(p));
    EXPECT_EQ(cache.missCount.value(), 0u);
}

TEST(RemapCache, DoubleFillIsIdempotent)
{
    RemapCache cache(1024, 4, 4, 8, "rc");
    cache.fill(7);
    cache.fill(7);   // must not panic on duplicate insert
    EXPECT_TRUE(cache.lookup(7));
}

TEST(MemoryImage, PristineIsDeterministicAndVaried)
{
    EXPECT_EQ(MemoryImage::pristine(5), MemoryImage::pristine(5));
    EXPECT_NE(MemoryImage::pristine(5), MemoryImage::pristine(6));
}

TEST(MemoryImage, WriteReadCopy)
{
    MemoryImage mem;
    EXPECT_EQ(mem.read(10), MemoryImage::pristine(10));
    mem.write(10, 0xdead);
    EXPECT_EQ(mem.read(10), 0xdeadu);
    mem.copyLine(10, 20);
    EXPECT_EQ(mem.read(20), 0xdeadu);
    // Copying an untouched line propagates its pristine value.
    mem.copyLine(30, 31);
    EXPECT_EQ(mem.read(31), MemoryImage::pristine(30));
}

} // namespace
} // namespace pipm
