/**
 * @file
 * Tests for the experiment runner: determinism, warmup semantics, stat
 * plausibility and cross-scheme relationships on a small workload.
 */

#include <gtest/gtest.h>

#include "sim/runner.hh"
#include "workloads/catalog.hh"

namespace pipm
{
namespace
{

SystemConfig
smallSystem()
{
    SystemConfig cfg = testConfig();
    cfg.numHosts = 2;
    cfg.coresPerHost = 2;
    cfg.validate();
    return cfg;
}

RunConfig
shortRun()
{
    RunConfig run;
    run.warmupRefsPerCore = 2'000;
    run.measureRefsPerCore = 8'000;
    run.footprintSampleEvery = 8'000;
    return run;
}

/** A small synthetic workload compatible with testConfig capacities. */
std::unique_ptr<Workload>
smallWorkload(double affinity = 0.9, double scan = 0.5)
{
    PatternParams p;
    p.name = "small";
    p.suite = "test";
    p.footprintFullBytes = 8ull << 30;
    p.partitionAffinity = affinity;
    p.zipfTheta = 0.8;
    p.readFrac = 0.8;
    p.seqRunLines = 8;
    p.gapMean = 20;
    p.privateFrac = 0.2;
    p.globalHotFrac = 0.08;
    p.scanFrac = scan;
    p.scanSpanFrac = 0.05;
    p.phaseRefs = 20'000;
    // 8 GB / 256 = 32 MB shared; testConfig CXL pool is 64 MB.
    return std::make_unique<SyntheticWorkload>(p, 256);
}

TEST(Runner, SameSeedIsBitForBitDeterministic)
{
    const SystemConfig cfg = smallSystem();
    auto wl = smallWorkload();
    const RunResult a = runExperiment(cfg, Scheme::pipmFull, *wl,
                                      shortRun());
    const RunResult b = runExperiment(cfg, Scheme::pipmFull, *wl,
                                      shortRun());
    EXPECT_EQ(a.execCycles, b.execCycles);
    EXPECT_EQ(a.sharedLlcMisses, b.sharedLlcMisses);
    EXPECT_EQ(a.pipmLinesIn, b.pipmLinesIn);
}

TEST(Runner, DifferentSeedsDiffer)
{
    const SystemConfig cfg = smallSystem();
    auto wl = smallWorkload();
    RunConfig run = shortRun();
    const RunResult a = runExperiment(cfg, Scheme::native, *wl, run);
    run.seed = 1234;
    const RunResult b = runExperiment(cfg, Scheme::native, *wl, run);
    EXPECT_NE(a.execCycles, b.execCycles);
}

TEST(Runner, StatsArePlausible)
{
    const SystemConfig cfg = smallSystem();
    auto wl = smallWorkload();
    const RunResult r = runExperiment(cfg, Scheme::pipmFull, *wl,
                                      shortRun());
    EXPECT_GT(r.execCycles, 0u);
    EXPECT_GT(r.instructions, 8'000u * 4);
    EXPECT_GT(r.ipc, 0.0);
    EXPECT_LT(r.ipc, 6.0);
    EXPECT_GE(r.sharedLlcMisses, r.localServedMisses);
    EXPECT_GE(r.localHitRate(), 0.0);
    EXPECT_LE(r.localHitRate(), 1.0);
    EXPECT_GE(r.pageFootprintFrac, 0.0);
    EXPECT_GE(r.pageFootprintFrac, r.lineFootprintFrac);
}

TEST(Runner, LocalOnlyOutperformsNative)
{
    const SystemConfig cfg = smallSystem();
    auto wl = smallWorkload();
    const RunResult native = runExperiment(cfg, Scheme::native, *wl,
                                           shortRun());
    const RunResult ideal = runExperiment(cfg, Scheme::localOnly, *wl,
                                          shortRun());
    EXPECT_LT(ideal.execCycles, native.execCycles);
    EXPECT_EQ(ideal.interHostAccesses, 0u);
}

TEST(Runner, PipmBeatsNativeOnAffineWorkload)
{
    const SystemConfig cfg = smallSystem();
    auto wl = smallWorkload(0.95, 0.6);
    RunConfig run = shortRun();
    run.measureRefsPerCore = 20'000;
    const RunResult native = runExperiment(cfg, Scheme::native, *wl, run);
    const RunResult pipm = runExperiment(cfg, Scheme::pipmFull, *wl, run);
    EXPECT_LT(pipm.execCycles, native.execCycles);
    EXPECT_GT(pipm.localHitRate(), native.localHitRate());
    EXPECT_GT(pipm.pipmLinesIn, 0u);
}

TEST(Runner, OsSchemeMigratesAndTracksHarm)
{
    const SystemConfig cfg = smallSystem();
    auto wl = smallWorkload();
    RunConfig run = shortRun();
    run.measureRefsPerCore = 20'000;
    const RunResult r = runExperiment(cfg, Scheme::memtis, *wl, run);
    EXPECT_GT(r.osMigrations, 0u);
    EXPECT_GT(r.totalTrackedMigrations, 0u);
    EXPECT_LE(r.harmfulMigrations, r.totalTrackedMigrations);
    EXPECT_GT(r.mgmtStallCycles, 0u);
    EXPECT_GT(r.migrationTransferBytes, 0u);
}

TEST(Runner, WarmupIsExcludedFromMeasurement)
{
    const SystemConfig cfg = smallSystem();
    auto wl = smallWorkload();
    RunConfig with_warmup = shortRun();
    RunConfig no_warmup = shortRun();
    no_warmup.warmupRefsPerCore = 0;
    const RunResult a = runExperiment(cfg, Scheme::native, *wl,
                                      with_warmup);
    const RunResult b = runExperiment(cfg, Scheme::native, *wl,
                                      no_warmup);
    // Cold caches make the unwarmed run slower per reference.
    const double a_cpr = static_cast<double>(a.execCycles) / 8'000;
    const double b_cpr = static_cast<double>(b.execCycles) / 8'000;
    EXPECT_LT(a_cpr, b_cpr);
}

} // namespace
} // namespace pipm
