/**
 * @file
 * Tests for the indexed min-heap core scheduler (DESIGN.md §9): model
 * equivalence against the reference linear scan (including exact
 * tie-breaking), re-key correctness, and whole-run bit-identity between
 * PIPM_SCHED=heap and PIPM_SCHED=scan under a combined crash +
 * suspicion + metadata-corruption fault schedule.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>
#include <vector>

#include "common/logging.hh"
#include "sim/runner.hh"
#include "sim/sched.hh"
#include "workloads/catalog.hh"

namespace pipm
{
namespace
{

struct ThrowOnErrorGuard
{
    ThrowOnErrorGuard() { detail::throwOnError = true; }
    ~ThrowOnErrorGuard() { detail::throwOnError = false; }
};

/** The historical scheduler: first slot with the strictly smallest
 *  clock wins, so equal clocks resolve to the lowest index. */
struct ScanModel
{
    std::vector<Cycles> clock;
    std::vector<bool> live;

    explicit ScanModel(std::size_t n) : clock(n, 0), live(n, true) {}

    std::uint32_t
    top() const
    {
        std::uint32_t best = ~0u;
        for (std::uint32_t i = 0; i < clock.size(); ++i) {
            if (!live[i])
                continue;
            if (best == ~0u || clock[i] < clock[best])
                best = i;
        }
        return best;
    }
};

TEST(Sched, InitialPickIsSlotZero)
{
    CoreScheduler s(8);
    EXPECT_EQ(s.size(), 8u);
    // All clocks equal: the scan picks slot 0.
    EXPECT_EQ(s.top(), 0u);
}

TEST(Sched, TiesResolveToLowestIndex)
{
    CoreScheduler s(5);
    s.update(0, 30);
    s.update(1, 10);
    s.update(2, 20);
    s.update(3, 10);
    s.update(4, 10);
    EXPECT_EQ(s.top(), 1u);   // 1, 3, 4 tie at 10
    s.remove(1);
    EXPECT_EQ(s.top(), 3u);
    s.remove(3);
    EXPECT_EQ(s.top(), 4u);
    s.update(4, 25);
    EXPECT_EQ(s.top(), 2u);
    EXPECT_EQ(s.clockOf(4), 25u);
}

TEST(Sched, RekeyBothDirections)
{
    CoreScheduler s(4);
    s.update(0, 100);
    s.update(1, 200);
    s.update(2, 300);
    s.update(3, 400);
    EXPECT_EQ(s.top(), 0u);
    s.update(0, 350);         // sift down past 1 and 2
    EXPECT_EQ(s.top(), 1u);
    s.update(3, 150);         // sift up past 2 and 0
    s.update(1, 500);
    EXPECT_EQ(s.top(), 3u);
}

TEST(Sched, RandomizedModelEquivalence)
{
    std::mt19937_64 rng(0xdecafbadu);
    for (int round = 0; round < 20; ++round) {
        const std::size_t n = 1 + rng() % 24;
        CoreScheduler heap(n);
        ScanModel scan(n);
        std::size_t alive = n;
        for (int step = 0; step < 400 && alive > 0; ++step) {
            const std::uint32_t pick = heap.top();
            ASSERT_EQ(pick, scan.top()) << "round " << round << " step "
                                        << step;
            // Mostly advance the picked slot (the runner's pattern, with
            // frequent exact ties from coarse clock quanta); sometimes
            // re-key an arbitrary live slot or retire the pick.
            const unsigned op = rng() % 10;
            if (op == 0) {
                heap.remove(pick);
                scan.live[pick] = false;
                --alive;
                continue;
            }
            std::uint32_t victim = pick;
            if (op == 1) {
                do {
                    victim = static_cast<std::uint32_t>(rng() % n);
                } while (!scan.live[victim]);
            }
            const Cycles key = scan.clock[victim] + (rng() % 4) * 10;
            heap.update(victim, key);
            scan.clock[victim] = key;
            ASSERT_EQ(heap.clockOf(victim), key);
        }
        ASSERT_EQ(heap.size(), alive);
        ASSERT_EQ(heap.empty(), alive == 0);
    }
}

// ---- Whole-run bit-identity -------------------------------------------

SystemConfig
smallSystem()
{
    SystemConfig cfg = testConfig();
    cfg.numHosts = 2;
    cfg.coresPerHost = 2;
    // Crash + suspicion + metadata corruption layered on the paper-
    // default lossy fabric: every subsystem the event horizon elides is
    // armed, so heap-vs-scan identity covers the full tick slow path.
    cfg.fault = paperSuspicionFaultConfig(7);
    addPaperMetaFaults(cfg.fault);
    cfg.validate();
    return cfg;
}

std::unique_ptr<Workload>
smallWorkload()
{
    PatternParams p;
    p.name = "small";
    p.suite = "test";
    p.footprintFullBytes = 8ull << 30;
    p.partitionAffinity = 0.9;
    p.zipfTheta = 0.8;
    p.readFrac = 0.8;
    p.seqRunLines = 8;
    p.gapMean = 20;
    p.privateFrac = 0.2;
    p.globalHotFrac = 0.08;
    p.scanFrac = 0.5;
    p.scanSpanFrac = 0.05;
    p.phaseRefs = 20'000;
    return std::make_unique<SyntheticWorkload>(p, 256);
}

RunConfig
identityRun(const std::string &sched, const std::string &stats_path)
{
    RunConfig run;
    run.warmupRefsPerCore = 1'500;
    run.measureRefsPerCore = 6'000;
    run.footprintSampleEvery = 8'000;
    run.scheduler = sched;
    run.statsJsonPath = stats_path;
    run.obsIntervalAccesses = 4'000;
    run.obsTraceCapacity = 256;
    run.obsFromEnv = false;   // tests must not react to the caller's env
    return run;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

TEST(Sched, HeapAndScanRunsAreBitIdentical)
{
    const SystemConfig cfg = smallSystem();
    auto wl = smallWorkload();
    const std::string ph = "test_sched_heap.json";
    const std::string ps = "test_sched_scan.json";

    const RunResult heap = runExperiment(cfg, Scheme::pipmFull, *wl,
                                         identityRun("heap", ph));
    const RunResult scan = runExperiment(cfg, Scheme::pipmFull, *wl,
                                         identityRun("scan", ps));

    EXPECT_EQ(heap.execCycles, scan.execCycles);
    EXPECT_EQ(heap.instructions, scan.instructions);
    EXPECT_EQ(heap.sharedAccesses, scan.sharedAccesses);
    EXPECT_EQ(heap.sharedLlcMisses, scan.sharedLlcMisses);
    EXPECT_EQ(heap.localServedMisses, scan.localServedMisses);
    EXPECT_EQ(heap.cxlServedMisses, scan.cxlServedMisses);
    EXPECT_EQ(heap.interHostAccesses, scan.interHostAccesses);
    EXPECT_EQ(heap.interHostStallCycles, scan.interHostStallCycles);
    EXPECT_EQ(heap.mgmtStallCycles, scan.mgmtStallCycles);
    EXPECT_EQ(heap.migrationTransferBytes, scan.migrationTransferBytes);
    EXPECT_EQ(heap.pipmPromotions, scan.pipmPromotions);
    EXPECT_EQ(heap.pipmRevocations, scan.pipmRevocations);
    EXPECT_EQ(heap.pipmLinesIn, scan.pipmLinesIn);
    EXPECT_EQ(heap.pipmLinesBack, scan.pipmLinesBack);
    EXPECT_EQ(heap.linkCrcErrors, scan.linkCrcErrors);
    EXPECT_EQ(heap.poisonEvents, scan.poisonEvents);
    EXPECT_EQ(heap.migrationAborts, scan.migrationAborts);
    EXPECT_EQ(heap.hostCrashes, scan.hostCrashes);
    EXPECT_EQ(heap.hostRejoins, scan.hostRejoins);
    EXPECT_EQ(heap.crashLinesReclaimed, scan.crashLinesReclaimed);
    EXPECT_EQ(heap.crashDirtyLinesLost, scan.crashDirtyLinesLost);
    EXPECT_EQ(heap.suspicions, scan.suspicions);
    EXPECT_EQ(heap.falseSuspicions, scan.falseSuspicions);
    EXPECT_EQ(heap.fencedRequests, scan.fencedRequests);
    EXPECT_EQ(heap.txnTimeouts, scan.txnTimeouts);
    EXPECT_EQ(heap.txnRetries, scan.txnRetries);
    EXPECT_EQ(heap.stallWindows, scan.stallWindows);
    EXPECT_EQ(heap.pageFootprintFrac, scan.pageFootprintFrac);
    EXPECT_EQ(heap.lineFootprintFrac, scan.lineFootprintFrac);

    // The telemetry export captures interval boundaries, event traces
    // and every registered counter: byte equality means the runs were
    // indistinguishable, not merely end-state-equal.
    const std::string heap_json = slurp(ph);
    const std::string scan_json = slurp(ps);
    EXPECT_FALSE(heap_json.empty());
    EXPECT_EQ(heap_json, scan_json);

    std::remove(ph.c_str());
    std::remove(ps.c_str());
}

TEST(Sched, UnknownSchedulerNamePanics)
{
    ThrowOnErrorGuard guard;
    const SystemConfig cfg = smallSystem();
    auto wl = smallWorkload();
    const RunConfig run = identityRun("fifo", "");
    EXPECT_THROW(runExperiment(cfg, Scheme::native, *wl, run), SimError);
}

} // namespace
} // namespace pipm
