/**
 * @file
 * Lease-based failure detection tests (DESIGN.md §11): configuration
 * validation of the new lease/timeout/stall knobs, stall-window schedule
 * determinism on its own RNG stream, deferred reclamation of a dead host
 * until its lease expires, transaction-retry exhaustion suspecting an
 * unresponsive owner, gray-failure fencing of a falsely suspected (alive)
 * host with cold readmission, oracle-mode equivalence when the detector
 * has nothing to detect, and the randomised suspicion-schedule checker.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "fault/fault_injector.hh"
#include "sim/runner.hh"
#include "sim/system.hh"
#include "verify/fault_schedule.hh"
#include "workloads/catalog.hh"

namespace pipm
{
namespace
{

struct ThrowOnErrorGuard
{
    ThrowOnErrorGuard() { detail::throwOnError = true; }
    ~ThrowOnErrorGuard() { detail::throwOnError = false; }
};

/** A trivial workload wrapper so tests can size the heap directly. */
class TinyWorkload : public Workload
{
  public:
    TinyWorkload(std::uint64_t shared_bytes, std::uint64_t private_bytes)
        : shared_(shared_bytes), private_(private_bytes)
    {
    }

    std::string name() const override { return "tiny"; }
    std::string suite() const override { return "test"; }
    std::uint64_t footprintBytes() const override { return shared_; }
    std::uint64_t sharedBytes() const override { return shared_; }
    std::uint64_t privateBytesPerHost() const override { return private_; }
    std::string fingerprint() const override { return "tiny"; }

    std::unique_ptr<CoreTrace>
    makeTrace(HostId, CoreId, unsigned, unsigned,
              std::uint64_t) const override
    {
        panic("TinyWorkload has no traces; drive the system directly");
    }

  private:
    std::uint64_t shared_;
    std::uint64_t private_;
};

MemRef
sharedRef(std::uint64_t page, unsigned line, MemOp op)
{
    MemRef r;
    r.shared = true;
    r.page = page;
    r.lineIdx = static_cast<std::uint8_t>(line);
    r.op = op;
    return r;
}

/**
 * Fault config with every rate zero but the lease detector armed, so
 * tests control exactly when hosts die, stall or get suspected. Lease
 * 20 us (80k cycles), heartbeat 4 us, 2 retries on a 2 us timeout,
 * readmit delay 10 us (40k cycles).
 */
FaultConfig
leaseFaults(std::uint64_t seed = 1)
{
    FaultConfig f;
    f.enabled = true;
    f.seed = seed;
    f.leaseNs = 20'000.0;
    f.heartbeatIntervalNs = 4'000.0;
    f.txnTimeoutNs = 2'000.0;
    f.txnRetryLimit = 2;
    f.txnBackoffBaseNs = 500.0;
    f.txnBackoffMaxExp = 2;
    f.readmitDelayNs = 10'000.0;
    return f;
}

/** Home line address of (shared page, line index). */
LineAddr
homeLine(MultiHostSystem &system, std::uint64_t page, unsigned line)
{
    return lineOf(pageBase(system.space().sharedMapping(page).frame) +
                  static_cast<PhysAddr>(line) * lineBytes);
}

/** A small synthetic workload compatible with testConfig capacities. */
std::unique_ptr<Workload>
smallWorkload()
{
    PatternParams p;
    p.name = "small";
    p.suite = "test";
    p.footprintFullBytes = 8ull << 30;
    p.partitionAffinity = 0.9;
    p.zipfTheta = 0.8;
    p.readFrac = 0.8;
    p.seqRunLines = 8;
    p.gapMean = 20;
    p.privateFrac = 0.2;
    p.globalHotFrac = 0.08;
    p.scanFrac = 0.5;
    p.scanSpanFrac = 0.05;
    p.phaseRefs = 20'000;
    return std::make_unique<SyntheticWorkload>(p, 256);
}

RunConfig
shortRun()
{
    RunConfig run;
    run.warmupRefsPerCore = 2'000;
    run.measureRefsPerCore = 8'000;
    run.footprintSampleEvery = 8'000;
    return run;
}

// ---- Configuration validation -------------------------------------------

TEST(SuspicionConfig, ValidationRejectsBadKnobs)
{
    ThrowOnErrorGuard guard;

    // A heartbeat period that is not shorter than the lease would let
    // every lease expire between renewals.
    FaultConfig f = leaseFaults();
    f.heartbeatIntervalNs = f.leaseNs;
    EXPECT_THROW(f.validate(), SimError);

    f = leaseFaults();
    f.heartbeatIntervalNs = 0.0;
    EXPECT_THROW(f.validate(), SimError);

    f = leaseFaults();
    f.leaseNs = -1.0;
    EXPECT_THROW(f.validate(), SimError);

    // The detector needs a positive per-attempt timeout.
    f = leaseFaults();
    f.txnTimeoutNs = 0.0;
    EXPECT_THROW(f.validate(), SimError);

    // A zero retry budget with a backoff armed can never fire it.
    f = leaseFaults();
    f.txnRetryLimit = 0;
    EXPECT_THROW(f.validate(), SimError);
    f.txnBackoffBaseNs = 0.0;
    EXPECT_NO_THROW(f.validate());

    // Gray-failure stalls are only observable through a lease.
    f = FaultConfig{};
    f.enabled = true;
    f.stallMeanIntervalNs = 50'000.0;
    EXPECT_THROW(f.validate(), SimError);

    f = leaseFaults();
    f.stallMeanIntervalNs = 50'000.0;
    f.stallMaxEvents = 0;
    EXPECT_THROW(f.validate(), SimError);

    EXPECT_NO_THROW(paperSuspicionFaultConfig().validate());
    EXPECT_GT(paperSuspicionFaultConfig().leaseNs, 0.0);
}

// ---- Stall-window schedule ----------------------------------------------

TEST(SuspicionSchedule, StallWindowsDeterministicOnSeparateStream)
{
    const FaultConfig crash_only =
        paperCrashFaultConfig(11, 50'000.0, 20'000.0);
    FaultConfig stalls = crash_only;
    stalls.leaseNs = 20'000.0;
    stalls.heartbeatIntervalNs = 4'000.0;
    stalls.stallMeanIntervalNs = 60'000.0;
    stalls.stallWindowNs = 30'000.0;

    FaultInjector a(crash_only, 4, 99);
    FaultInjector b(stalls, 4, 99);
    FaultInjector c(stalls, 4, 99);

    // Enabling stall windows must not shift the crash schedule: the
    // windows come from their own derived stream.
    ASSERT_EQ(a.crashSchedule().size(), b.crashSchedule().size());
    for (std::size_t i = 0; i < a.crashSchedule().size(); ++i) {
        EXPECT_EQ(a.crashSchedule()[i].at, b.crashSchedule()[i].at);
        EXPECT_EQ(a.crashSchedule()[i].host, b.crashSchedule()[i].host);
        EXPECT_EQ(a.crashSchedule()[i].rejoin,
                  b.crashSchedule()[i].rejoin);
        EXPECT_EQ(a.crashSchedule()[i].downUntil,
                  b.crashSchedule()[i].downUntil);
    }

    // Without a stall rate there are no windows at all.
    std::size_t total = 0;
    for (HostId h = 0; h < 4; ++h)
        total += a.stallWindows(h).size();
    EXPECT_EQ(total, 0u);

    // Same config, same seed: the window schedule replays bit-for-bit,
    // and every per-host list is sorted, non-overlapping and bounded.
    bool any = false;
    total = 0;
    for (HostId h = 0; h < 4; ++h) {
        const auto &wb = b.stallWindows(h);
        const auto &wc = c.stallWindows(h);
        ASSERT_EQ(wb.size(), wc.size());
        for (std::size_t i = 0; i < wb.size(); ++i) {
            EXPECT_EQ(wb[i], wc[i]);
            EXPECT_LT(wb[i].first, wb[i].second);
            if (i > 0)
                EXPECT_GE(wb[i].first, wb[i - 1].second);
        }
        any = any || !wb.empty();
        total += wb.size();
    }
    EXPECT_TRUE(any);
    EXPECT_LE(total, static_cast<std::size_t>(stalls.stallMaxEvents));

    // The side-effect-free query agrees with the windows: covered
    // instants report the window end, instants outside report 0.
    for (HostId h = 0; h < 4; ++h) {
        for (const auto &w : b.stallWindows(h)) {
            const Cycles mid = w.first + (w.second - w.first) / 2;
            EXPECT_EQ(b.stallUntilAt(h, mid), w.second);
            EXPECT_EQ(b.stallUntilAt(h, w.second), 0u);
        }
    }
}

// ---- Deferred reclamation -----------------------------------------------

TEST(SuspicionReclaim, DeadHostReclaimDeferredUntilLeaseExpiry)
{
    ThrowOnErrorGuard guard;
    SystemConfig cfg = testConfig();
    cfg.fault = leaseFaults();
    TinyWorkload wl(64 * pageBytes, 8 * pageBytes);
    MultiHostSystem system(cfg, Scheme::native, wl, 1);
    ASSERT_TRUE(system.detectionEnabled());
    FaultInjector &faults = *system.faultInjector();

    Cycles now = 0;
    system.access(1, 0, sharedRef(2, 3, MemOp::write), now, 42);
    const LineAddr line = homeLine(system, 2, 3);
    const std::uint64_t stale = system.memory().read(line);
    ASSERT_NE(stale, 42u);

    now += 1'000;
    system.crashHost(1, now);
    EXPECT_FALSE(system.hostAlive(1));
    EXPECT_EQ(system.hostEpoch(1), 1u);

    // The device has not noticed yet: the dead host's M entry lingers,
    // nothing is lost, and the relaxed invariants tolerate it.
    ASSERT_NE(system.deviceDirectory().probe(line), nullptr);
    EXPECT_TRUE(system.lostLines().empty());
    EXPECT_EQ(faults.suspicions.value(), 0u);
    system.checkInvariants();

    // The lease expires: the detector suspects the host and runs the
    // full reclamation, recording the dirty loss.
    system.tick(now + nsToCycles(cfg.fault.leaseNs) +
                nsToCycles(cfg.fault.heartbeatIntervalNs));
    EXPECT_EQ(faults.suspicions.value(), 1u);
    EXPECT_EQ(faults.falseSuspicions.value(), 0u);
    EXPECT_EQ(system.deviceDirectory().probe(line), nullptr);
    ASSERT_EQ(system.lostLines().size(), 1u);
    EXPECT_EQ(system.lostLines()[0], line);
    EXPECT_EQ(faults.crashDirtyLinesLost.value(), 1u);

    // Survivors read the stale device copy, exactly like oracle mode.
    const AccessResult r = system.access(
        0, 0, sharedRef(2, 3, MemOp::read), now + 200'000);
    EXPECT_EQ(r.data, stale);
    system.checkInvariants();
}

TEST(SuspicionTimeout, RetryExhaustionSuspectsDeadOwner)
{
    ThrowOnErrorGuard guard;
    SystemConfig cfg = testConfig();
    cfg.fault = leaseFaults();
    TinyWorkload wl(64 * pageBytes, 8 * pageBytes);
    MultiHostSystem system(cfg, Scheme::native, wl, 1);
    FaultInjector &faults = *system.faultInjector();

    Cycles now = 0;
    system.access(1, 0, sharedRef(2, 3, MemOp::write), now, 42);
    const LineAddr line = homeLine(system, 2, 3);
    const std::uint64_t stale = system.memory().read(line);

    now += 1'000;
    system.crashHost(1, now);
    ASSERT_NE(system.deviceDirectory().probe(line), nullptr);

    // Long before the lease expires, a demand access forwards to the
    // dead owner. Each attempt times out; after the retry budget the
    // requester gives up, the owner is suspected and reclaimed, and the
    // access restarts against the swept directory.
    now += 1'000;
    const AccessResult r =
        system.access(0, 0, sharedRef(2, 3, MemOp::read), now);
    EXPECT_EQ(r.data, stale);
    EXPECT_EQ(faults.txnTimeouts.value(), 3u);   // 1 try + 2 retries
    EXPECT_EQ(faults.txnRetries.value(), 2u);
    EXPECT_EQ(faults.txnAbandoned.value(), 1u);
    EXPECT_EQ(faults.suspicions.value(), 1u);
    EXPECT_EQ(faults.falseSuspicions.value(), 0u);
    // The timeouts and backoffs are on the demand path's critical path.
    EXPECT_GT(r.latency, nsToCycles(3 * cfg.fault.txnTimeoutNs));
    // The access restarted against the swept directory and re-allocated
    // a fresh S entry for the surviving reader.
    const DirEntry *entry = system.deviceDirectory().probe(line);
    ASSERT_NE(entry, nullptr);
    EXPECT_TRUE(entry->has(0));
    EXPECT_FALSE(entry->has(1));
    ASSERT_EQ(system.lostLines().size(), 1u);
    system.checkInvariants();
}

// ---- Gray-failure fencing -----------------------------------------------

TEST(SuspicionFence, FalseSuspicionFencesAliveHostAndReadmitsCold)
{
    ThrowOnErrorGuard guard;
    SystemConfig cfg = testConfig();
    cfg.fault = leaseFaults();
    TinyWorkload wl(64 * pageBytes, 8 * pageBytes);
    MultiHostSystem system(cfg, Scheme::native, wl, 1);
    FaultInjector &faults = *system.faultInjector();

    Cycles now = 0;
    system.access(1, 0, sharedRef(4, 5, MemOp::write), now, 77);
    const LineAddr line = homeLine(system, 4, 5);
    const std::uint64_t stale = system.memory().read(line);

    // Suspect host 1 while it is demonstrably alive: the device cannot
    // tell a zombie from a corpse, so the host is fenced — epoch bumped,
    // volatile state treated exactly like a crash, dirty write lost.
    now += 1'000;
    system.suspectHost(1, now);
    EXPECT_EQ(faults.suspicions.value(), 1u);
    EXPECT_EQ(faults.falseSuspicions.value(), 1u);
    EXPECT_FALSE(system.hostAlive(1));
    EXPECT_EQ(system.hostEpoch(1), 1u);
    EXPECT_EQ(system.deviceDirectory().probe(line), nullptr);
    ASSERT_EQ(system.lostLines().size(), 1u);
    EXPECT_EQ(system.lostLines()[0], line);

    const Cycles back = system.hostDownUntil(1);
    EXPECT_EQ(back, now + nsToCycles(cfg.fault.readmitDelayNs));

    // Just before the readmit delay elapses, the zombie is still fenced.
    system.tick(back - 1);
    EXPECT_FALSE(system.hostAlive(1));
    EXPECT_EQ(faults.fencedRequests.value(), 0u);

    // Its first post-fence request is NACKed on the stale epoch and the
    // host readmits through cold rejoin under a fresh (even) epoch.
    system.tick(back);
    EXPECT_TRUE(system.hostAlive(1));
    EXPECT_EQ(system.hostEpoch(1), 2u);
    EXPECT_EQ(faults.fencedRequests.value(), 1u);
    EXPECT_EQ(faults.hostRejoins.value(), 1u);
    EXPECT_EQ(system.hierarchy(1).stateOf(line), HostState::I);

    // The readmitted host participates again — reading back the stale
    // surviving copy of the line its fence lost.
    const AccessResult r = system.access(
        1, 0, sharedRef(4, 5, MemOp::read), back + 1'000);
    EXPECT_EQ(r.data, stale);
    system.checkInvariants();
}

// ---- Full-run behaviour -------------------------------------------------

TEST(SuspicionRun, LeaseWithNothingToDetectMatchesOracleRun)
{
    // Same seed, same workload, no crashes and no stalls: arming the
    // detector must not change a single measured cycle relative to the
    // oracle (leaseNs == 0) model.
    SystemConfig oracle = testConfig();
    oracle.fault = paperCrashFaultConfig(3, 0.0, 0.0);
    SystemConfig lease = testConfig();
    lease.fault = paperCrashFaultConfig(3, 0.0, 0.0);
    lease.fault.leaseNs = 20'000.0;
    lease.fault.heartbeatIntervalNs = 4'000.0;

    auto wl = smallWorkload();
    const RunResult a = runExperiment(oracle, Scheme::pipmFull, *wl,
                                      shortRun());
    const RunResult b = runExperiment(lease, Scheme::pipmFull, *wl,
                                      shortRun());
    EXPECT_EQ(a.execCycles, b.execCycles);
    EXPECT_EQ(a.sharedLlcMisses, b.sharedLlcMisses);
    EXPECT_EQ(a.linkCrcErrors, b.linkCrcErrors);
    EXPECT_EQ(a.poisonEvents, b.poisonEvents);
    EXPECT_EQ(a.pipmPromotions, b.pipmPromotions);
    EXPECT_EQ(a.pipmLinesIn, b.pipmLinesIn);
    EXPECT_EQ(b.suspicions, 0u);
    EXPECT_EQ(b.falseSuspicions, 0u);
    EXPECT_EQ(b.fencedRequests, 0u);
    EXPECT_EQ(b.txnTimeouts, 0u);
    EXPECT_EQ(b.txnRetries, 0u);
    EXPECT_EQ(b.stallWindows, 0u);
}

TEST(SuspicionRun, SameSeedReplayIsDeterministic)
{
    SystemConfig cfg = testConfig();
    cfg.fault = paperSuspicionFaultConfig(5);

    auto wl = smallWorkload();
    const RunResult a = runExperiment(cfg, Scheme::pipmFull, *wl,
                                      shortRun());
    const RunResult b = runExperiment(cfg, Scheme::pipmFull, *wl,
                                      shortRun());
    EXPECT_EQ(a.execCycles, b.execCycles);
    EXPECT_EQ(a.suspicions, b.suspicions);
    EXPECT_EQ(a.falseSuspicions, b.falseSuspicions);
    EXPECT_EQ(a.fencedRequests, b.fencedRequests);
    EXPECT_EQ(a.txnTimeouts, b.txnTimeouts);
    EXPECT_EQ(a.txnRetries, b.txnRetries);
    EXPECT_EQ(a.stallWindows, b.stallWindows);
    EXPECT_EQ(a.hostCrashes, b.hostCrashes);
    EXPECT_EQ(a.crashDirtyLinesLost, b.crashDirtyLinesLost);
    EXPECT_GT(a.execCycles, 0u);
}

// ---- Randomised suspicion-schedule acceptance ---------------------------

TEST(SuspicionAcceptance, FourHostScheduleCleanAgainstOracle)
{
    SystemConfig cfg = testConfig();
    cfg.numHosts = 4;

    const FaultCheckResult res = checkFaultSchedules(
        cfg, Scheme::pipmFull, 2, 5'000, 1,
        FaultCheckOptions{/*withCrashes=*/true, /*withSuspicion=*/true});
    EXPECT_TRUE(res.ok) << res.violation;
    EXPECT_GE(res.suspicions, 1u);
}

} // namespace
} // namespace pipm
