/**
 * @file
 * Integration tests for MultiHostSystem: functional data correctness
 * across every access path (local, CXL coherent, GIM inter-host, PIPM
 * migrated), coherence invariants under random stress, and the
 * scheme-specific machinery (OS epochs, PIPM promotion/revocation).
 */

#include <gtest/gtest.h>

#include <map>

#include "common/logging.hh"
#include "common/rng.hh"
#include "sim/system.hh"
#include "workloads/catalog.hh"

namespace pipm
{
namespace
{

/** A trivial workload wrapper so tests can size the heap directly. */
class TinyWorkload : public Workload
{
  public:
    TinyWorkload(std::uint64_t shared_bytes, std::uint64_t private_bytes)
        : shared_(shared_bytes), private_(private_bytes)
    {
    }

    std::string name() const override { return "tiny"; }
    std::string suite() const override { return "test"; }
    std::uint64_t footprintBytes() const override { return shared_; }
    std::uint64_t sharedBytes() const override { return shared_; }
    std::uint64_t privateBytesPerHost() const override { return private_; }
    std::string fingerprint() const override { return "tiny"; }

    std::unique_ptr<CoreTrace>
    makeTrace(HostId, CoreId, unsigned, unsigned,
              std::uint64_t) const override
    {
        panic("TinyWorkload has no traces; drive the system directly");
    }

  private:
    std::uint64_t shared_;
    std::uint64_t private_;
};

MemRef
sharedRef(std::uint64_t page, unsigned line, MemOp op)
{
    MemRef r;
    r.shared = true;
    r.page = page;
    r.lineIdx = static_cast<std::uint8_t>(line);
    r.op = op;
    return r;
}

MemRef
privateRef(std::uint64_t page, unsigned line, MemOp op)
{
    MemRef r = sharedRef(page, line, op);
    r.shared = false;
    return r;
}

class SystemTest : public ::testing::TestWithParam<Scheme>
{
  protected:
    SystemTest()
        : cfg_(testConfig()),
          workload_(64 * pageBytes, 8 * pageBytes),
          system_(cfg_, GetParam(), workload_, 7)
    {
    }

    SystemConfig cfg_;
    TinyWorkload workload_;
    MultiHostSystem system_;
};

TEST_P(SystemTest, ReadReturnsPristineValueInitially)
{
    if (GetParam() == Scheme::localOnly)
        GTEST_SKIP() << "local-only does not model shared data";
    const MemRef r = sharedRef(3, 5, MemOp::read);
    const AccessResult res = system_.access(0, 0, r, 0);
    const PhysAddr pa =
        pageBase(system_.space().sharedFrame(3)) + 5 * lineBytes;
    EXPECT_EQ(res.data, MemoryImage::pristine(lineOf(pa)));
    EXPECT_GT(res.latency, 0u);
}

TEST_P(SystemTest, WriteThenReadSameHost)
{
    system_.access(0, 0, sharedRef(1, 2, MemOp::write), 0, 0xabcd);
    const AccessResult res =
        system_.access(0, 0, sharedRef(1, 2, MemOp::read), 100);
    if (GetParam() != Scheme::localOnly)
        EXPECT_EQ(res.data, 0xabcdu);
}

TEST_P(SystemTest, WriteThenReadAcrossHosts)
{
    if (GetParam() == Scheme::localOnly)
        GTEST_SKIP() << "local-only does not model shared data";
    system_.access(0, 0, sharedRef(1, 2, MemOp::write), 0, 0x1111);
    const AccessResult res =
        system_.access(1, 0, sharedRef(1, 2, MemOp::read), 1000);
    EXPECT_EQ(res.data, 0x1111u);
    // And back the other way after an overwrite.
    system_.access(1, 0, sharedRef(1, 2, MemOp::write), 2000, 0x2222);
    const AccessResult res2 =
        system_.access(0, 0, sharedRef(1, 2, MemOp::read), 3000);
    EXPECT_EQ(res2.data, 0x2222u);
    system_.checkInvariants();
}

TEST_P(SystemTest, PrivateDataStaysLocalAndCorrect)
{
    system_.access(1, 0, privateRef(2, 9, MemOp::write), 0, 0x77);
    const AccessResult res =
        system_.access(1, 0, privateRef(2, 9, MemOp::read), 10);
    EXPECT_EQ(res.data, 0x77u);
    EXPECT_EQ(system_.interHostAccesses.value(), 0u);
}

TEST_P(SystemTest, CxlAccessIsSlowerThanPrivate)
{
    if (GetParam() == Scheme::localOnly)
        GTEST_SKIP();
    const Cycles shared_lat =
        system_.access(0, 0, sharedRef(40, 0, MemOp::read), 0).latency;
    const Cycles private_lat =
        system_.access(0, 0, privateRef(3, 0, MemOp::read), 0).latency;
    EXPECT_GT(shared_lat, private_lat + nsToCycles(50.0));
}

TEST_P(SystemTest, CacheHitsAreFast)
{
    system_.access(0, 0, sharedRef(5, 1, MemOp::read), 0);
    const AccessResult hit =
        system_.access(0, 0, sharedRef(5, 1, MemOp::read), 500);
    EXPECT_LE(hit.latency, cfg_.l1.roundTrip);
}

/**
 * Random stress: coherence and data-value correctness under a random mix
 * of reads/writes from all hosts, with periodic invariant checks. The
 * oracle is per-line "last written token (or pristine)". The test config
 * has a tiny LLC, so evictions, writebacks and (for PIPM) incremental
 * migrations all fire constantly.
 */
TEST_P(SystemTest, RandomStressPreservesCoherenceAndData)
{
    if (GetParam() == Scheme::localOnly)
        GTEST_SKIP() << "local-only intentionally breaks sharing";
    Rng rng(31 + static_cast<std::uint64_t>(GetParam()));
    std::map<std::pair<std::uint64_t, unsigned>, std::uint64_t> oracle;
    Cycles now = 0;
    std::uint64_t token = 1;

    for (int i = 0; i < 30000; ++i) {
        const auto h = static_cast<HostId>(rng.below(cfg_.numHosts));
        const std::uint64_t page = rng.below(16);   // concentrated
        const unsigned line = static_cast<unsigned>(rng.below(8));
        const bool write = rng.chance(0.4);
        now += rng.below(50);
        system_.tick(now);
        if (write) {
            system_.access(h, 0, sharedRef(page, line, MemOp::write),
                           now, token);
            oracle[{page, line}] = token;
            ++token;
        } else {
            const AccessResult res = system_.access(
                h, 0, sharedRef(page, line, MemOp::read), now);
            auto it = oracle.find({page, line});
            if (it != oracle.end()) {
                ASSERT_EQ(res.data, it->second)
                    << "read of page " << page << " line " << line
                    << " at host " << int(h) << " step " << i;
            }
        }
        if (i % 5000 == 4999)
            system_.checkInvariants();
    }
    system_.checkInvariants();
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SystemTest, ::testing::ValuesIn(allSchemes),
    [](const ::testing::TestParamInfo<Scheme> &info) {
        std::string name(toString(info.param));
        for (char &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

TEST(SystemPipm, PromotionAndIncrementalMigrationLifecycle)
{
    SystemConfig cfg = testConfig();
    TinyWorkload wl(64 * pageBytes, 8 * pageBytes);
    MultiHostSystem sys(cfg, Scheme::pipmFull, wl, 7);
    PipmState &pipm = *sys.pipmState();

    // Host 0 hammers page 2 until the vote fires; each access uses a
    // different line so every access misses and reaches the device.
    Cycles now = 0;
    for (unsigned i = 0; i < cfg.pipm.migrationThreshold; ++i) {
        sys.access(0, 0, sharedRef(2, i % linesPerPage, MemOp::write),
                   now, i);
        now += 10'000;
    }
    EXPECT_EQ(pipm.migratedHostOf(pageOf(
                  pageBase(sys.space().sharedFrame(2)))),
              0);

    // Evicting the written (M-state) lines triggers case 1. Force
    // evictions by streaming unrelated pages.
    for (std::uint64_t p = 20; p < 64; ++p) {
        for (unsigned l = 0; l < linesPerPage; l += 2) {
            sys.access(0, 0, sharedRef(p, l, MemOp::read), now);
            now += 500;
        }
    }
    EXPECT_GT(pipm.linesIn.value(), 0u);

    // A local re-read of a migrated line is served locally (case 3) and
    // still returns the written data.
    const PageFrame frame = sys.space().sharedFrame(2);
    const PageFrame cxl_page = pageOf(pageBase(frame));
    for (unsigned l = 0; l < linesPerPage; ++l) {
        if (pipm.lineMigrated(0, cxl_page, l)) {
            const std::uint64_t before = sys.localServedMisses.value();
            const AccessResult res =
                sys.access(0, 0, sharedRef(2, l, MemOp::read), now);
            EXPECT_EQ(res.data, l % cfg.pipm.migrationThreshold);
            EXPECT_EQ(sys.localServedMisses.value(), before + 1);
            break;
        }
    }
    sys.checkInvariants();
}

TEST(SystemPipm, InterHostAccessMigratesLineBack)
{
    SystemConfig cfg = testConfig();
    TinyWorkload wl(64 * pageBytes, 8 * pageBytes);
    MultiHostSystem sys(cfg, Scheme::pipmFull, wl, 7);
    PipmState &pipm = *sys.pipmState();

    Cycles now = 0;
    for (unsigned i = 0; i < cfg.pipm.migrationThreshold; ++i) {
        sys.access(0, 0, sharedRef(2, i, MemOp::write), now, 100 + i);
        now += 10'000;
    }
    for (std::uint64_t p = 20; p < 64; ++p) {
        for (unsigned l = 0; l < linesPerPage; l += 2)
            sys.access(0, 0, sharedRef(p, l, MemOp::read), now);
    }
    const PageFrame cxl_page =
        pageOf(pageBase(sys.space().sharedFrame(2)));
    ASSERT_GT(pipm.linesIn.value(), 0u);

    unsigned migrated_line = linesPerPage;
    for (unsigned l = 0; l < linesPerPage; ++l) {
        if (pipm.lineMigrated(0, cxl_page, l)) {
            migrated_line = l;
            break;
        }
    }
    ASSERT_LT(migrated_line, linesPerPage);

    // Host 1 reads the migrated line: cases 2/6 move it back to CXL and
    // the data is the token host 0 wrote.
    const AccessResult res = sys.access(
        1, 0, sharedRef(2, migrated_line, MemOp::read), now + 1000);
    EXPECT_EQ(res.data, 100u + migrated_line);
    EXPECT_FALSE(pipm.lineMigrated(0, cxl_page, migrated_line));
    EXPECT_GT(pipm.linesBack.value(), 0u);
    sys.checkInvariants();
}

TEST(SystemOs, EpochMigratesHotPageAndChargesStalls)
{
    SystemConfig cfg = testConfig();
    TinyWorkload wl(64 * pageBytes, 8 * pageBytes);
    MultiHostSystem sys(cfg, Scheme::memtis, wl, 7);

    // Host 1 hammers page 4 across two epochs.
    Cycles now = 0;
    for (int epoch = 0; epoch < 4; ++epoch) {
        for (int i = 0; i < 200; ++i) {
            sys.access(1, 0,
                       sharedRef(4, static_cast<unsigned>(i) %
                                        linesPerPage,
                                 MemOp::read),
                       now);
            now += 300;
        }
        now += cfg.osEpochCycles();
        sys.tick(now);
    }
    EXPECT_GT(sys.osMigrations.value(), 0u);
    EXPECT_EQ(sys.gimHostOf(4), 1);
    EXPECT_GT(sys.mgmtStallCycles.value(), 0u);

    // Data written before the migration survives the page copy.
    MultiHostSystem sys2(cfg, Scheme::memtis, wl, 7);
    now = 0;
    sys2.access(1, 0, sharedRef(4, 3, MemOp::write), now, 0xbeef);
    for (int epoch = 0; epoch < 4; ++epoch) {
        for (int i = 0; i < 200; ++i) {
            sys2.access(1, 0,
                        sharedRef(4, static_cast<unsigned>(i) %
                                         linesPerPage,
                                  MemOp::read),
                        now);
            now += 300;
        }
        now += cfg.osEpochCycles();
        sys2.tick(now);
    }
    ASSERT_EQ(sys2.gimHostOf(4), 1);
    const AccessResult res =
        sys2.access(0, 0, sharedRef(4, 3, MemOp::read), now);
    EXPECT_EQ(res.data, 0xbeefu);
    // Host 0's access to the migrated page was a 4-hop GIM access.
    EXPECT_GT(sys2.interHostAccesses.value(), 0u);
}

TEST(SystemGim, RemoteWritesReachTheOwnerCopy)
{
    SystemConfig cfg = testConfig();
    TinyWorkload wl(64 * pageBytes, 8 * pageBytes);
    MultiHostSystem sys(cfg, Scheme::nomad, wl, 7);

    // Manufacture a migrated page directly through the address space.
    ASSERT_TRUE(sys.space().migrateSharedToHost(9, 0));
    // (Bypasses the policy path; the system routes by current mapping.)
    sys.access(1, 0, sharedRef(9, 1, MemOp::write), 0, 0x5a5a);
    const AccessResult owner_read =
        sys.access(0, 0, sharedRef(9, 1, MemOp::read), 1000);
    EXPECT_EQ(owner_read.data, 0x5a5au);
    const AccessResult remote_read =
        sys.access(1, 0, sharedRef(9, 1, MemOp::read), 2000);
    EXPECT_EQ(remote_read.data, 0x5a5au);
    EXPECT_GE(sys.interHostAccesses.value(), 2u);
}

TEST(SystemHwStatic, OnlyStaticOwnerInstantiatesPages)
{
    SystemConfig cfg = testConfig();
    TinyWorkload wl(64 * pageBytes, 8 * pageBytes);
    MultiHostSystem sys(cfg, Scheme::hwStatic, wl, 7);
    PipmState &pipm = *sys.pipmState();

    // Page with an even CXL frame belongs to host 0, odd to host 1.
    Cycles now = 0;
    for (std::uint64_t page = 0; page < 8; ++page) {
        const PageFrame cxl_page =
            pageOf(pageBase(sys.space().sharedFrame(page)));
        const auto owner = static_cast<HostId>(cxl_page % cfg.numHosts);
        const auto other = static_cast<HostId>((owner + 1) % cfg.numHosts);
        // The non-owner cannot instantiate the mapping...
        for (int i = 0; i < 20; ++i) {
            sys.access(other, 0,
                       sharedRef(page, static_cast<unsigned>(i),
                                 MemOp::read),
                       now);
            now += 2'000;
        }
        EXPECT_FALSE(pipm.hasLocalEntry(other, cxl_page));
        // ...but the owner instantiates it on first device access.
        sys.access(owner, 0, sharedRef(page, 63, MemOp::read), now);
        now += 2'000;
        EXPECT_TRUE(pipm.hasLocalEntry(owner, cxl_page));
        EXPECT_EQ(pipm.migratedHostOf(cxl_page), owner);
    }
    sys.checkInvariants();
}

TEST(SystemPipm, PinnedPagesStayInCxlAndUnpinningRevokes)
{
    SystemConfig cfg = testConfig();
    TinyWorkload wl(64 * pageBytes, 8 * pageBytes);
    MultiHostSystem sys(cfg, Scheme::pipmFull, wl, 7);
    PipmState &pipm = *sys.pipmState();

    // §6 software interface: pin page 3 in CXL memory.
    sys.setPageMigrationAllowed(3, false);
    Cycles now = 0;
    for (unsigned i = 0; i < 4 * cfg.pipm.migrationThreshold; ++i) {
        sys.access(0, 0, sharedRef(3, i % linesPerPage, MemOp::write),
                   now, i);
        now += 5'000;
    }
    const PageFrame cxl_page =
        pageOf(pageBase(sys.space().sharedFrame(3)));
    EXPECT_EQ(pipm.migratedHostOf(cxl_page), invalidHost);

    // Disabling a currently migrated page revokes it on the spot.
    for (unsigned i = 0; i < cfg.pipm.migrationThreshold; ++i) {
        sys.access(0, 0, sharedRef(4, i, MemOp::write), now, i);
        now += 5'000;
    }
    const PageFrame page4 =
        pageOf(pageBase(sys.space().sharedFrame(4)));
    ASSERT_EQ(pipm.migratedHostOf(page4), 0);
    sys.setPageMigrationAllowed(4, false);
    EXPECT_EQ(pipm.migratedHostOf(page4), invalidHost);
    EXPECT_FALSE(pipm.hasLocalEntry(0, page4));
    sys.checkInvariants();
}

TEST(SystemNaive, NaiveCoherencePaysDeviceRoundTripsOnLocalHits)
{
    SystemConfig cfg = testConfig();
    TinyWorkload wl(64 * pageBytes, 8 * pageBytes);
    MultiHostSystem pipm_sys(cfg, Scheme::pipmFull, wl, 7);
    MultiHostSystem naive_sys(cfg, Scheme::pipmNaive, wl, 7);

    // Drive both systems identically: promote page 2, migrate lines,
    // then re-read a migrated line and compare latencies.
    auto drive = [&cfg](MultiHostSystem &sys) -> Cycles {
        Cycles now = 0;
        for (unsigned i = 0; i < cfg.pipm.migrationThreshold; ++i) {
            sys.access(0, 0, sharedRef(2, i, MemOp::write), now, i);
            now += 5'000;
        }
        for (std::uint64_t p = 20; p < 64; ++p) {
            for (unsigned l = 0; l < linesPerPage; l += 2) {
                sys.access(0, 0, sharedRef(p, l, MemOp::read), now);
                now += 500;
            }
        }
        const PageFrame cxl_page =
            pageOf(pageBase(sys.space().sharedFrame(2)));
        for (unsigned l = 0; l < linesPerPage; ++l) {
            if (sys.pipmState()->lineMigrated(0, cxl_page, l)) {
                return sys.access(0, 0, sharedRef(2, l, MemOp::read),
                                  now + 100'000)
                    .latency;
            }
        }
        return 0;
    };
    const Cycles pipm_lat = drive(pipm_sys);
    const Cycles naive_lat = drive(naive_sys);
    ASSERT_GT(pipm_lat, 0u);
    ASSERT_GT(naive_lat, 0u);
    // Fig. 8: the naive design adds at least one link round trip.
    EXPECT_GT(naive_lat, pipm_lat + nsToCycles(80.0));
    pipm_sys.checkInvariants();
    naive_sys.checkInvariants();
}

TEST(SystemStats, LocalOnlyServesEverythingLocally)
{
    SystemConfig cfg = testConfig();
    TinyWorkload wl(64 * pageBytes, 8 * pageBytes);
    MultiHostSystem sys(cfg, Scheme::localOnly, wl, 7);
    Rng rng(5);
    Cycles now = 0;
    for (int i = 0; i < 2000; ++i) {
        const auto h = static_cast<HostId>(rng.below(cfg.numHosts));
        sys.access(h, 0,
                   sharedRef(rng.below(64),
                             static_cast<unsigned>(rng.below(64)),
                             MemOp::read),
                   now);
        now += 100;
    }
    EXPECT_EQ(sys.interHostAccesses.value(), 0u);
    EXPECT_EQ(sys.cxlServedMisses.value(), 0u);
    EXPECT_EQ(sys.localServedMisses.value(), sys.sharedLlcMisses.value());
}

} // namespace
} // namespace pipm
