/**
 * @file
 * Tests for the optional TLB model: hit/miss/walk accounting, capacity,
 * shootdowns, and its integration with OS page migration (remaps
 * invalidate translations at every core).
 */

#include <gtest/gtest.h>

#include "os/tlb.hh"
#include "sim/system.hh"
#include "workloads/workload.hh"

namespace pipm
{
namespace
{

TEST(Tlb, MissWalksThenHits)
{
    TlbConfig cfg;
    Tlb tlb(cfg);
    const Cycles first = tlb.translate(42);
    const Cycles second = tlb.translate(42);
    EXPECT_EQ(first, cfg.hitCycles + cfg.walkCycles);
    EXPECT_EQ(second, cfg.hitCycles);
    EXPECT_EQ(tlb.missCount.value(), 1u);
    EXPECT_EQ(tlb.hits.value(), 1u);
}

TEST(Tlb, CapacityEvictsOldTranslations)
{
    TlbConfig cfg;
    cfg.entries = 16;
    cfg.ways = 4;
    Tlb tlb(cfg);
    for (std::uint64_t p = 0; p < 64; ++p)
        tlb.translate(p);
    // A re-walk is needed for at least some early pages.
    const std::uint64_t misses = tlb.missCount.value();
    tlb.translate(0);
    EXPECT_GE(tlb.missCount.value(), misses);
    EXPECT_EQ(tlb.missCount.value() + tlb.hits.value(), 65u);
}

TEST(Tlb, ShootdownForcesRewalk)
{
    Tlb tlb(TlbConfig{});
    tlb.translate(7);
    tlb.shootdown(7);
    EXPECT_EQ(tlb.shootdowns.value(), 1u);
    tlb.translate(7);
    EXPECT_EQ(tlb.missCount.value(), 2u);
    // Shooting down an absent page is harmless and uncounted.
    tlb.shootdown(999);
    EXPECT_EQ(tlb.shootdowns.value(), 1u);
}

class TlbStub : public Workload
{
  public:
    std::string name() const override { return "tlbstub"; }
    std::string suite() const override { return "test"; }
    std::uint64_t footprintBytes() const override { return 1 << 20; }
    std::uint64_t sharedBytes() const override { return 64 * pageBytes; }
    std::uint64_t privateBytesPerHost() const override
    {
        return 8 * pageBytes;
    }
    std::string fingerprint() const override { return "tlbstub"; }
    std::unique_ptr<CoreTrace>
    makeTrace(HostId, CoreId, unsigned, unsigned,
              std::uint64_t) const override
    {
        return nullptr;
    }
};

MemRef
ref(std::uint64_t page, unsigned line)
{
    MemRef r;
    r.shared = true;
    r.page = page;
    r.lineIdx = static_cast<std::uint8_t>(line);
    r.op = MemOp::read;
    return r;
}

TEST(TlbSystem, TranslationChargesAppearWhenEnabled)
{
    SystemConfig cfg = testConfig();
    cfg.tlb.enabled = true;
    TlbStub wl;
    MultiHostSystem sys(cfg, Scheme::native, wl, 3);
    ASSERT_NE(sys.tlb(0, 0), nullptr);

    const Cycles cold = sys.access(0, 0, ref(1, 0), 0).latency;
    // Same page, different line: TLB hit, L1 miss.
    const Cycles warm = sys.access(0, 0, ref(1, 1), 10'000).latency;
    EXPECT_GT(cold, warm);
    EXPECT_EQ(sys.tlb(0, 0)->missCount.value(), 1u);
}

TEST(TlbSystem, OsMigrationShootsDownAllCores)
{
    SystemConfig cfg = testConfig();
    cfg.tlb.enabled = true;
    cfg.coresPerHost = 2;
    TlbStub wl;
    MultiHostSystem sys(cfg, Scheme::memtis, wl, 3);

    // Warm every core's translation of page 4, then drive epochs until
    // the page migrates.
    Cycles now = 0;
    for (int epoch = 0; epoch < 4; ++epoch) {
        for (int i = 0; i < 200; ++i) {
            sys.access(1, static_cast<CoreId>(i % 2),
                       ref(4, static_cast<unsigned>(i) % linesPerPage),
                       now);
            sys.access(0, static_cast<CoreId>(i % 2), ref(4, 0), now);
            now += 300;
        }
        now += cfg.osEpochCycles();
        sys.tick(now);
    }
    ASSERT_NE(sys.gimHostOf(4), invalidHost);
    for (unsigned h = 0; h < cfg.numHosts; ++h) {
        for (unsigned c = 0; c < cfg.coresPerHost; ++c) {
            EXPECT_GT(sys.tlb(static_cast<HostId>(h),
                              static_cast<CoreId>(c))
                          ->shootdowns.value(),
                      0u)
                << "host " << h << " core " << c;
        }
    }
}

TEST(TlbSystem, DisabledByDefault)
{
    SystemConfig cfg = testConfig();
    TlbStub wl;
    MultiHostSystem sys(cfg, Scheme::native, wl, 3);
    EXPECT_EQ(sys.tlb(0, 0), nullptr);
}

} // namespace
} // namespace pipm
