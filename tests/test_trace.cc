/**
 * @file
 * Tests for the trace subsystem (src/trace, DESIGN.md §14): varint
 * codec edges, PIPMT writer/reader round-trips over randomized
 * streams, adversarial-input rejection (truncation, garbage headers,
 * checksum flips), generator determinism, merge interleaving, and the
 * headline contract — recording a live run with TraceRecorder and
 * replaying the trace reproduces the RunResult (and stats.json)
 * byte-for-byte, including under fault injection.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/config.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/varint.hh"
#include "fuzz/fuzz.hh"
#include "sim/runner.hh"
#include "trace/recorder.hh"
#include "trace/trace.hh"
#include "trace/trace_gen.hh"
#include "workloads/catalog.hh"
#include "workloads/trace_file.hh"

namespace pipm
{
namespace
{

/** Scoped detail::throwOnError so fatal()/panic() raise SimError. */
struct ThrowGuard
{
    bool saved = detail::throwOnError;
    ThrowGuard() { detail::throwOnError = true; }
    ~ThrowGuard() { detail::throwOnError = saved; }
};

class TraceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = std::filesystem::temp_directory_path() /
               "pipm_trace_subsystem_test";
        std::filesystem::remove_all(dir_);
        std::filesystem::create_directories(dir_);
    }

    void TearDown() override { std::filesystem::remove_all(dir_); }

    std::string
    path(const char *name) const
    {
        return (dir_ / name).string();
    }

    std::filesystem::path dir_;
};

std::vector<std::uint8_t>
slurpBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<std::uint8_t>(
        std::istreambuf_iterator<char>(in),
        std::istreambuf_iterator<char>());
}

void
spitBytes(const std::string &path, const std::vector<std::uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
}

std::string
slurpText(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

// ---- Varint / zigzag codec ------------------------------------------

TEST(Varint, RoundTripsEdgeValues)
{
    const std::uint64_t values[] = {
        0,   1,   127,  128,        129,
        300, 16383, 16384, 1ull << 32, (1ull << 63) - 1,
        1ull << 63, ~0ull};
    for (std::uint64_t v : values) {
        std::vector<std::uint8_t> buf;
        putVarint(buf, v);
        ASSERT_LE(buf.size(), maxVarintBytes);
        std::uint64_t out = 0;
        const std::size_t used =
            getVarint(buf.data(), buf.data() + buf.size(), out);
        EXPECT_EQ(used, buf.size()) << v;
        EXPECT_EQ(out, v);
    }
}

TEST(Varint, RejectsTruncation)
{
    std::vector<std::uint8_t> buf;
    putVarint(buf, ~0ull);
    std::uint64_t out = 0;
    for (std::size_t keep = 0; keep < buf.size(); ++keep)
        EXPECT_EQ(getVarint(buf.data(), buf.data() + keep, out), 0u)
            << keep;
}

TEST(Varint, RejectsOverlongTenthByte)
{
    // Ten continuation-flagged bytes: the tenth may only carry the top
    // bit of the 64-bit value.
    std::vector<std::uint8_t> buf(9, 0x80);
    buf.push_back(0x02);
    std::uint64_t out = 0;
    EXPECT_EQ(getVarint(buf.data(), buf.data() + buf.size(), out), 0u);
}

TEST(Varint, ZigzagRoundTripsExtremes)
{
    const std::int64_t values[] = {0,  1,  -1, 2, -2, 1ll << 40,
                                   -(1ll << 40),
                                   std::numeric_limits<std::int64_t>::max(),
                                   std::numeric_limits<std::int64_t>::min()};
    for (std::int64_t v : values)
        EXPECT_EQ(zigzagDecode(zigzagEncode(v)), v) << v;
    // Small magnitudes must encode small (the delta-compression win).
    EXPECT_LE(zigzagEncode(-1), 2u);
    EXPECT_LE(zigzagEncode(1), 2u);
}

// ---- Writer/reader round-trip ---------------------------------------

TraceMeta
smallMeta(unsigned hosts, unsigned cores)
{
    TraceMeta meta;
    meta.name = "unit";
    meta.sourceFingerprint = "unit;test";
    meta.numHosts = hosts;
    meta.coresPerHost = cores;
    meta.sharedBytes = 1024 * pageBytes;
    meta.privateBytesPerHost = 32 * pageBytes;
    meta.footprintBytes =
        meta.sharedBytes + hosts * meta.privateBytesPerHost;
    return meta;
}

std::vector<MemRef>
randomStream(Rng &rng, std::uint64_t n, std::uint64_t shared_pages,
             std::uint64_t private_pages)
{
    std::vector<MemRef> refs;
    refs.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        MemRef r;
        r.shared = rng.chance(0.8);
        r.page = r.shared ? rng.below(shared_pages)
                          : rng.below(private_pages);
        r.lineIdx = static_cast<std::uint8_t>(rng.below(linesPerPage));
        r.op = rng.chance(0.3) ? MemOp::write : MemOp::read;
        r.gap = static_cast<std::uint16_t>(rng.below(65536));
        refs.push_back(r);
    }
    return refs;
}

TEST_F(TraceTest, RoundTripsRandomizedStreams)
{
    const TraceMeta meta = smallMeta(3, 2);
    TraceWriter out(meta);
    Rng rng(2026);
    std::vector<std::vector<MemRef>> streams;
    for (unsigned s = 0; s < meta.streamCount(); ++s) {
        streams.push_back(randomStream(rng, 200 + 37 * s, 1024, 32));
        for (const MemRef &r : streams.back())
            out.append(s, r);
    }
    out.writeTo(path("random.pipmt"));

    TraceReader in(path("random.pipmt"));
    EXPECT_EQ(in.meta().name, "unit");
    EXPECT_EQ(in.meta().sourceFingerprint, "unit;test");
    EXPECT_EQ(in.meta().numHosts, 3u);
    EXPECT_EQ(in.meta().coresPerHost, 2u);
    EXPECT_EQ(in.meta().sharedBytes, meta.sharedBytes);
    for (unsigned s = 0; s < meta.streamCount(); ++s) {
        const auto decoded = in.decodeStream(s);
        ASSERT_EQ(decoded.size(), streams[s].size()) << "stream " << s;
        for (std::size_t i = 0; i < decoded.size(); ++i) {
            ASSERT_EQ(decoded[i].page, streams[s][i].page)
                << "stream " << s << " ref " << i;
            ASSERT_EQ(decoded[i].lineIdx, streams[s][i].lineIdx);
            ASSERT_EQ(decoded[i].shared, streams[s][i].shared);
            ASSERT_EQ(static_cast<int>(decoded[i].op),
                      static_cast<int>(streams[s][i].op));
            ASSERT_EQ(decoded[i].gap, streams[s][i].gap);
        }
    }
}

TEST_F(TraceTest, WritesAreByteDeterministic)
{
    for (const char *name : {"a.pipmt", "b.pipmt"}) {
        TraceWriter out(smallMeta(2, 1));
        Rng rng(7);
        for (const MemRef &r : randomStream(rng, 500, 1024, 32))
            out.append(0, r);
        rng = Rng(8);
        for (const MemRef &r : randomStream(rng, 500, 1024, 32))
            out.append(1, r);
        out.writeTo(path(name));
    }
    EXPECT_EQ(slurpBytes(path("a.pipmt")), slurpBytes(path("b.pipmt")));
}

// ---- Adversarial inputs ---------------------------------------------

TEST_F(TraceTest, RejectsGarbageHeader)
{
    ThrowGuard guard;
    spitBytes(path("garbage.pipmt"),
              {'G', 'A', 'R', 'B', 'A', 'G', 'E', '!', 0, 1, 2, 3});
    EXPECT_THROW(TraceReader(path("garbage.pipmt")), SimError);

    // Right magic, unsupported version.
    spitBytes(path("badver.pipmt"),
              {'P', 'I', 'P', 'M', 'T', 99, 0, 0, 0, 0, 0});
    EXPECT_THROW(TraceReader(path("badver.pipmt")), SimError);

    spitBytes(path("empty.pipmt"), {});
    EXPECT_THROW(TraceReader(path("empty.pipmt")), SimError);
}

TEST_F(TraceTest, RejectsTruncationAtEveryPrefix)
{
    {
        TraceWriter out(smallMeta(1, 1));
        Rng rng(3);
        for (const MemRef &r : randomStream(rng, 64, 1024, 32))
            out.append(0, r);
        out.writeTo(path("whole.pipmt"));
    }
    const auto whole = slurpBytes(path("whole.pipmt"));
    ThrowGuard guard;
    // Every proper prefix must be rejected (truncated header, stream
    // table, or payload — the trailing-bytes and checksum checks close
    // the gaps the varint decoder alone would not notice).
    for (std::size_t keep = 0; keep < whole.size();
         keep += std::max<std::size_t>(1, whole.size() / 37)) {
        spitBytes(path("prefix.pipmt"),
                  {whole.begin(), whole.begin() + keep});
        EXPECT_THROW(TraceReader(path("prefix.pipmt")), SimError)
            << "prefix " << keep << "/" << whole.size();
    }
}

TEST_F(TraceTest, RejectsPayloadCorruption)
{
    {
        TraceWriter out(smallMeta(1, 1));
        Rng rng(11);
        for (const MemRef &r : randomStream(rng, 256, 1024, 32))
            out.append(0, r);
        out.writeTo(path("clean.pipmt"));
    }
    auto bytes = slurpBytes(path("clean.pipmt"));
    bytes.back() ^= 0x40;  // flip payload bits -> checksum mismatch
    spitBytes(path("flipped.pipmt"), bytes);
    ThrowGuard guard;
    EXPECT_THROW(TraceReader(path("flipped.pipmt")), SimError);
}

TEST_F(TraceTest, RejectsTrailingGarbage)
{
    {
        TraceWriter out(smallMeta(1, 1));
        Rng rng(13);
        for (const MemRef &r : randomStream(rng, 64, 1024, 32))
            out.append(0, r);
        out.writeTo(path("clean.pipmt"));
    }
    auto bytes = slurpBytes(path("clean.pipmt"));
    bytes.push_back(0x00);
    spitBytes(path("tail.pipmt"), bytes);
    ThrowGuard guard;
    EXPECT_THROW(TraceReader(path("tail.pipmt")), SimError);
}

// ---- Generators ------------------------------------------------------

TEST_F(TraceTest, GeneratorsAreDeterministicAndReplayable)
{
    for (const std::string &model : genModels()) {
        GenSpec spec;
        spec.model = model;
        spec.numHosts = 2;
        spec.coresPerHost = 1;
        spec.refsPerStream = 400;
        spec.sharedPages = 256;
        spec.seed = 17;
        generateTrace(spec).writeTo(path("gen1.pipmt"));
        generateTrace(spec).writeTo(path("gen2.pipmt"));
        EXPECT_EQ(slurpBytes(path("gen1.pipmt")),
                  slurpBytes(path("gen2.pipmt")))
            << model;

        TraceFileWorkload replay(path("gen1.pipmt"));
        EXPECT_EQ(replay.name(), "gen:" + model);
        EXPECT_EQ(replay.totalRefs(), 2 * 400u);
        auto trace = replay.makeTrace(0, 0, 1, 2, 0);
        for (int i = 0; i < 400; ++i) {
            const MemRef r = trace->next();
            if (r.shared)
                ASSERT_LT(r.page, 256u) << model;
            ASSERT_LT(r.lineIdx, linesPerPage) << model;
        }

        GenSpec other = spec;
        other.seed = 18;
        generateTrace(other).writeTo(path("gen3.pipmt"));
        EXPECT_NE(slurpBytes(path("gen1.pipmt")),
                  slurpBytes(path("gen3.pipmt")))
            << model;
    }
}

TEST_F(TraceTest, GeneratorRejectsUnknownModel)
{
    ThrowGuard guard;
    GenSpec spec;
    spec.model = "nosuch";
    EXPECT_THROW(generateTrace(spec), SimError);
}

// ---- Merge -----------------------------------------------------------

TEST_F(TraceTest, MergeInterleavesDeterministically)
{
    GenSpec a;
    a.model = "hotdrift";
    a.numHosts = 2;
    a.coresPerHost = 1;
    a.refsPerStream = 100;
    a.sharedPages = 128;
    a.seed = 1;
    GenSpec b = a;
    b.model = "handoff";
    b.seed = 2;
    generateTrace(a).writeTo(path("a.pipmt"));
    generateTrace(b).writeTo(path("b.pipmt"));

    mergeTraces({path("a.pipmt"), path("b.pipmt")})
        .writeTo(path("m1.pipmt"));
    mergeTraces({path("a.pipmt"), path("b.pipmt")})
        .writeTo(path("m2.pipmt"));
    EXPECT_EQ(slurpBytes(path("m1.pipmt")), slurpBytes(path("m2.pipmt")));

    TraceReader merged(path("m1.pipmt"));
    EXPECT_EQ(merged.totalRecords(), 2 * 2 * 100u);
    // Round-robin: stream 0 starts with a's first ref, then b's.
    const auto s0 = merged.decodeStream(0);
    const auto a0 = TraceReader(path("a.pipmt")).decodeStream(0);
    const auto b0 = TraceReader(path("b.pipmt")).decodeStream(0);
    ASSERT_EQ(s0.size(), a0.size() + b0.size());
    EXPECT_EQ(s0[0].page, a0[0].page);
    EXPECT_EQ(s0[1].page, b0[0].page);
    EXPECT_EQ(s0[2].page, a0[1].page);

    // Merged order is input order: swapping inputs changes the bytes.
    mergeTraces({path("b.pipmt"), path("a.pipmt")})
        .writeTo(path("m3.pipmt"));
    EXPECT_NE(slurpBytes(path("m1.pipmt")), slurpBytes(path("m3.pipmt")));
}

TEST_F(TraceTest, MergeRejectsGeometryMismatch)
{
    GenSpec a;
    a.numHosts = 2;
    a.coresPerHost = 1;
    a.refsPerStream = 10;
    a.sharedPages = 64;
    GenSpec b = a;
    b.coresPerHost = 2;
    generateTrace(a).writeTo(path("a.pipmt"));
    generateTrace(b).writeTo(path("b.pipmt"));
    ThrowGuard guard;
    EXPECT_THROW(mergeTraces({path("a.pipmt"), path("b.pipmt")}),
                 SimError);
}

// ---- Record -> replay identity --------------------------------------

/** Run `workload` recording the consumed streams, then replay the
 *  trace and require bit-identical results (and stats.json when
 *  `with_stats`). */
void
expectReplayIdentity(const SystemConfig &cfg, const RunConfig &run,
                     const std::string &stats_dir, bool with_stats)
{
    const auto source = workloadByName("ycsb", 256);
    const std::string trace_path = stats_dir + "/run.pipmt";

    TraceRecorder recorder(*source, cfg.numHosts, cfg.coresPerHost);
    RunConfig rec_run = run;
    rec_run.obsFromEnv = false;
    if (with_stats)
        rec_run.statsJsonPath = stats_dir + "/record.json";
    const RunResult recorded =
        runExperiment(cfg, Scheme::pipmFull, recorder, rec_run);
    ASSERT_GT(recorder.recordedRefs(), 0u);
    recorder.writeTo(trace_path);

    TraceFileWorkload replay(trace_path);
    RunConfig rep_run = run;
    rep_run.obsFromEnv = false;
    if (with_stats)
        rep_run.statsJsonPath = stats_dir + "/replay.json";
    const RunResult replayed =
        runExperiment(cfg, Scheme::pipmFull, replay, rep_run);

    EXPECT_EQ(fuzz::fingerprintResult(recorded),
              fuzz::fingerprintResult(replayed));
    EXPECT_EQ(recorded.workload, replayed.workload);
    if (with_stats)
        EXPECT_EQ(slurpText(stats_dir + "/record.json"),
                  slurpText(stats_dir + "/replay.json"));
}

TEST_F(TraceTest, RecordedRunReplaysBitIdentically)
{
    for (const std::uint64_t seed : {7ull, 42ull, 1234ull}) {
        SystemConfig cfg = testConfig();
        cfg.numHosts = 2;
        RunConfig run;
        run.warmupRefsPerCore = 200;
        run.measureRefsPerCore = 1'500;
        run.seed = seed;
        expectReplayIdentity(cfg, run, dir_.string(),
                             /*with_stats=*/seed == 42);
    }
}

TEST_F(TraceTest, FaultEnabledRunReplaysBitIdentically)
{
    SystemConfig cfg = testConfig();
    cfg.numHosts = 3;
    cfg.fault.enabled = true;
    cfg.fault.seed = 9;
    cfg.fault.linkErrorRate = 0.05;
    cfg.fault.poisonRate = 0.01;
    cfg.fault.migrationAbortRate = 0.1;
    cfg.fault.crashMeanIntervalNs = 40'000.0;
    cfg.fault.crashRejoinNs = 10'000.0;
    cfg.fault.crashMaxEvents = 2;
    RunConfig run;
    run.warmupRefsPerCore = 200;
    run.measureRefsPerCore = 2'000;
    run.seed = 5;
    expectReplayIdentity(cfg, run, dir_.string(), /*with_stats=*/true);
}

TEST_F(TraceTest, RecorderRefusesSecondRun)
{
    const auto source = workloadByName("ycsb", 256);
    TraceRecorder recorder(*source, 1, 1);
    auto t = recorder.makeTrace(0, 0, 1, 1, 42);
    ThrowGuard guard;
    EXPECT_THROW(recorder.makeTrace(0, 0, 1, 1, 42), SimError);
}

// ---- validate() geometry hardening (pow2 set counts) ----------------

TEST(ConfigGeometry, RejectsNonPow2SetCounts)
{
    ThrowGuard guard;
    {
        SystemConfig cfg = testConfig();
        cfg.l1.sizeBytes = 3 * 4096;  // 12 KB / (64 B * ways) sets
        EXPECT_THROW(cfg.validate(), SimError);
    }
    {
        SystemConfig cfg = testConfig();
        cfg.llcPerCore.sizeBytes = 3 * (64 << 10);
        EXPECT_THROW(cfg.validate(), SimError);
    }
    {
        SystemConfig cfg = testConfig();
        cfg.deviceDirectory.slices = 3;
        cfg.deviceDirectory.sets = 6;
        EXPECT_THROW(cfg.validate(), SimError);
    }
    // The unmodified test geometry stays valid.
    testConfig().validate();
}

} // namespace
} // namespace pipm
