/**
 * @file
 * Tests for trace-file record/replay: word packing, round-trip equality
 * with the generating workload, looping, metadata and error handling.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/logging.hh"
#include "workloads/catalog.hh"
#include "workloads/trace_file.hh"

namespace pipm
{
namespace
{

class TraceFileTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = std::filesystem::temp_directory_path() /
               "pipm_trace_test_dir";
        std::filesystem::remove_all(dir_);
    }

    void TearDown() override { std::filesystem::remove_all(dir_); }

    std::filesystem::path dir_;
};

TEST(TracePacking, RoundTripsAllFields)
{
    MemRef ref;
    ref.shared = true;
    ref.page = (1ull << 39) + 12345;
    ref.lineIdx = 63;
    ref.op = MemOp::write;
    ref.gap = 65535;
    const MemRef out = unpackMemRef(packMemRef(ref));
    EXPECT_EQ(out.shared, ref.shared);
    EXPECT_EQ(out.page, ref.page);
    EXPECT_EQ(out.lineIdx, ref.lineIdx);
    EXPECT_EQ(static_cast<int>(out.op), static_cast<int>(ref.op));
    EXPECT_EQ(out.gap, ref.gap);

    ref.shared = false;
    ref.op = MemOp::read;
    ref.page = 0;
    ref.gap = 0;
    ref.lineIdx = 0;
    const MemRef out2 = unpackMemRef(packMemRef(ref));
    EXPECT_FALSE(out2.shared);
    EXPECT_EQ(static_cast<int>(out2.op), static_cast<int>(MemOp::read));
}

TEST(TracePacking, OversizedPagePanics)
{
    detail::throwOnError = true;
    MemRef ref;
    ref.page = 1ull << 40;
    EXPECT_THROW(packMemRef(ref), SimError);
    detail::throwOnError = false;
}

TEST_F(TraceFileTest, RecordedTracesReplayIdentically)
{
    auto workload = workloadByName("ycsb", 256);
    recordTraces(*workload, dir_.string(), 500, 2, 2, 99);

    TraceFileWorkload replay(dir_.string());
    EXPECT_EQ(replay.name(), "ycsb");
    EXPECT_EQ(replay.sharedBytes(), workload->sharedBytes());
    EXPECT_EQ(replay.recordedHosts(), 2u);
    EXPECT_EQ(replay.refsPerCore(), 500u);

    // The replayed stream equals the original generator's stream.
    auto original = workload->makeTrace(1, 0, 2, 2, 99 + 7919 * 64);
    auto from_file = replay.makeTrace(1, 0, 2, 2, 0);
    for (int i = 0; i < 500; ++i) {
        const MemRef a = original->next();
        const MemRef b = from_file->next();
        ASSERT_EQ(a.page, b.page) << "ref " << i;
        ASSERT_EQ(a.lineIdx, b.lineIdx);
        ASSERT_EQ(static_cast<int>(a.op), static_cast<int>(b.op));
        ASSERT_EQ(a.gap, b.gap);
        ASSERT_EQ(a.shared, b.shared);
    }
}

TEST_F(TraceFileTest, StreamsLoopAtTheEnd)
{
    auto workload = workloadByName("ycsb", 256);
    recordTraces(*workload, dir_.string(), 100, 1, 1, 5);
    FileTrace trace(dir_.string() + "/trace_h0_c0.bin");
    const MemRef first = trace.next();
    for (int i = 1; i < 100; ++i)
        trace.next();
    const MemRef wrapped = trace.next();
    EXPECT_EQ(trace.wraps(), 1u);
    EXPECT_EQ(first.page, wrapped.page);
    EXPECT_EQ(first.gap, wrapped.gap);
}

TEST_F(TraceFileTest, RejectsOversubscribedGeometry)
{
    auto workload = workloadByName("ycsb", 256);
    recordTraces(*workload, dir_.string(), 50, 1, 1, 5);
    TraceFileWorkload replay(dir_.string());
    detail::throwOnError = true;
    EXPECT_THROW(replay.makeTrace(1, 0, 1, 2, 0), SimError);
    detail::throwOnError = false;
}

TEST_F(TraceFileTest, MissingMetadataIsFatal)
{
    detail::throwOnError = true;
    EXPECT_THROW(TraceFileWorkload((dir_ / "nope").string()), SimError);
    detail::throwOnError = false;
}

TEST_F(TraceFileTest, TruncatedFileIsFatal)
{
    std::filesystem::create_directories(dir_);
    {
        std::FILE *f =
            std::fopen((dir_ / "trace_h0_c0.bin").c_str(), "wb");
        const char bytes[5] = {1, 2, 3, 4, 5};
        std::fwrite(bytes, 1, 5, f);
        std::fclose(f);
    }
    detail::throwOnError = true;
    EXPECT_THROW(FileTrace((dir_ / "trace_h0_c0.bin").string()),
                 SimError);
    detail::throwOnError = false;
}

} // namespace
} // namespace pipm
