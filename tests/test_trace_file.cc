/**
 * @file
 * Tests for PIPMT trace-backed workloads (workloads/trace_file):
 * snapshot round-trip equality with the generating workload, stream
 * looping, geometry/metadata error handling, and fingerprint
 * content-addressing. The format layer itself (writer/reader/recorder/
 * generators) is covered by test_trace.cc.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/logging.hh"
#include "workloads/catalog.hh"
#include "workloads/trace_file.hh"

namespace pipm
{
namespace
{

class TraceFileTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = std::filesystem::temp_directory_path() /
               "pipm_trace_test_dir";
        std::filesystem::remove_all(dir_);
        std::filesystem::create_directories(dir_);
    }

    void TearDown() override { std::filesystem::remove_all(dir_); }

    std::string
    path(const char *name) const
    {
        return (dir_ / name).string();
    }

    std::filesystem::path dir_;
};

TEST_F(TraceFileTest, SnapshotReplaysIdentically)
{
    auto workload = workloadByName("ycsb", 256);
    snapshotTrace(*workload, path("ycsb.pipmt"), 500, 2, 2, 99);

    TraceFileWorkload replay(path("ycsb.pipmt"));
    EXPECT_EQ(replay.name(), "ycsb");
    EXPECT_EQ(replay.suite(), "trace");
    EXPECT_EQ(replay.sharedBytes(), workload->sharedBytes());
    EXPECT_EQ(replay.privateBytesPerHost(),
              workload->privateBytesPerHost());
    EXPECT_EQ(replay.recordedHosts(), 2u);
    EXPECT_EQ(replay.recordedCoresPerHost(), 2u);
    EXPECT_EQ(replay.refsIn(1, 0), 500u);
    EXPECT_EQ(replay.totalRefs(), 4 * 500u);

    // The replayed stream equals the original generator's stream
    // (snapshotTrace uses the runner's per-core seed derivation).
    auto original = workload->makeTrace(1, 0, 2, 2, 99 + 7919 * 64);
    auto from_file = replay.makeTrace(1, 0, 2, 2, 0);
    for (int i = 0; i < 500; ++i) {
        const MemRef a = original->next();
        const MemRef b = from_file->next();
        ASSERT_EQ(a.page, b.page) << "ref " << i;
        ASSERT_EQ(a.lineIdx, b.lineIdx) << "ref " << i;
        ASSERT_EQ(static_cast<int>(a.op), static_cast<int>(b.op))
            << "ref " << i;
        ASSERT_EQ(a.gap, b.gap) << "ref " << i;
        ASSERT_EQ(a.shared, b.shared) << "ref " << i;
    }
}

TEST_F(TraceFileTest, FingerprintIsContentAddressed)
{
    auto workload = workloadByName("ycsb", 256);
    snapshotTrace(*workload, path("a.pipmt"), 100, 1, 1, 5);
    snapshotTrace(*workload, path("b.pipmt"), 100, 1, 1, 5);
    snapshotTrace(*workload, path("c.pipmt"), 100, 1, 1, 6);

    TraceFileWorkload a(path("a.pipmt"));
    TraceFileWorkload b(path("b.pipmt"));
    TraceFileWorkload c(path("c.pipmt"));
    // Same snapshot parameters -> same payload -> same fingerprint;
    // a different seed changes the payload and must change it. Replay
    // must never alias the synthetic source in the bench cache.
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
    EXPECT_NE(a.fingerprint(), c.fingerprint());
    EXPECT_NE(a.fingerprint(), workload->fingerprint());
}

TEST_F(TraceFileTest, StreamsLoopAtTheEnd)
{
    auto workload = workloadByName("ycsb", 256);
    snapshotTrace(*workload, path("loop.pipmt"), 100, 1, 1, 5);
    TraceFileWorkload replay(path("loop.pipmt"));
    auto trace = replay.makeTrace(0, 0, 1, 1, 0);
    auto *file_trace = dynamic_cast<FileTrace *>(trace.get());
    ASSERT_NE(file_trace, nullptr);
    const MemRef first = file_trace->next();
    for (int i = 1; i < 100; ++i)
        file_trace->next();
    const MemRef wrapped = file_trace->next();
    EXPECT_EQ(file_trace->wraps(), 1u);
    EXPECT_EQ(first.page, wrapped.page);
    EXPECT_EQ(first.gap, wrapped.gap);
}

TEST_F(TraceFileTest, RejectsOversubscribedGeometry)
{
    auto workload = workloadByName("ycsb", 256);
    snapshotTrace(*workload, path("small.pipmt"), 50, 1, 1, 5);
    TraceFileWorkload replay(path("small.pipmt"));
    detail::throwOnError = true;
    EXPECT_THROW(replay.makeTrace(1, 0, 1, 2, 0), SimError);
    EXPECT_THROW(replay.makeTrace(0, 1, 2, 1, 0), SimError);
    detail::throwOnError = false;
}

TEST_F(TraceFileTest, MissingFileIsFatal)
{
    detail::throwOnError = true;
    EXPECT_THROW(TraceFileWorkload(path("nope.pipmt")), SimError);
    detail::throwOnError = false;
}

TEST_F(TraceFileTest, TruncatedFileIsFatal)
{
    {
        std::FILE *f = std::fopen(path("trunc.pipmt").c_str(), "wb");
        const char bytes[5] = {1, 2, 3, 4, 5};
        std::fwrite(bytes, 1, 5, f);
        std::fclose(f);
    }
    detail::throwOnError = true;
    EXPECT_THROW(TraceFileWorkload(path("trunc.pipmt")), SimError);
    detail::throwOnError = false;
}

TEST_F(TraceFileTest, EmptyStreamListIsFatal)
{
    detail::throwOnError = true;
    auto workload = workloadByName("ycsb", 256);
    EXPECT_THROW(
        snapshotTrace(*workload, path("zero.pipmt"), 0, 1, 1, 5),
        SimError);
    detail::throwOnError = false;
}

} // namespace
} // namespace pipm
