/**
 * @file
 * Tests for the protocol model and the explicit-state checker — the
 * reproduction of the paper's Murphi verification (§5.1.4).
 */

#include <gtest/gtest.h>

#include "verify/checker.hh"

namespace pipm
{
namespace
{

TEST(ProtocolModel, InitialStateIsClean)
{
    ProtocolModel model(2);
    const ProtoState s = model.initial();
    EXPECT_TRUE(model.checkInvariants(s).empty());
    EXPECT_TRUE(s.memLatest);
    EXPECT_EQ(s.dir, DevState::I);
}

TEST(ProtocolModel, ExclusiveReadGrant)
{
    ProtocolModel model(2);
    ProtoState s = model.apply(model.initial(), ProtoEvent::read, 0);
    EXPECT_EQ(s.host[0].cache, HostState::M);
    EXPECT_TRUE(s.host[0].latest);
    EXPECT_EQ(s.dir, DevState::M);
    EXPECT_TRUE(model.checkInvariants(s).empty());
}

TEST(ProtocolModel, SecondReaderDowngradesToShared)
{
    ProtocolModel model(2);
    ProtoState s = model.apply(model.initial(), ProtoEvent::read, 0);
    s = model.apply(s, ProtoEvent::read, 1);
    EXPECT_EQ(s.host[0].cache, HostState::S);
    EXPECT_EQ(s.host[1].cache, HostState::S);
    EXPECT_EQ(s.dir, DevState::S);
    EXPECT_TRUE(s.memLatest);
    EXPECT_TRUE(model.checkInvariants(s).empty());
}

TEST(ProtocolModel, WriteInvalidatesSharers)
{
    ProtocolModel model(2);
    ProtoState s = model.apply(model.initial(), ProtoEvent::read, 0);
    s = model.apply(s, ProtoEvent::read, 1);
    s = model.apply(s, ProtoEvent::write, 0);
    EXPECT_EQ(s.host[0].cache, HostState::M);
    EXPECT_TRUE(s.host[0].dirty);
    EXPECT_EQ(s.host[1].cache, HostState::I);
    EXPECT_FALSE(s.memLatest);
    EXPECT_TRUE(model.checkInvariants(s).empty());
}

TEST(ProtocolModel, Case1IncrementalMigrationOnEviction)
{
    ProtocolModel model(2);
    ProtoState s = model.apply(model.initial(), ProtoEvent::promote, 0);
    s = model.apply(s, ProtoEvent::write, 0);    // M dirty at h0
    s = model.apply(s, ProtoEvent::evict, 0);    // case 1: M -> I'
    EXPECT_TRUE(s.lineMigrated);
    EXPECT_TRUE(s.localLatest);
    EXPECT_FALSE(s.memLatest);
    EXPECT_EQ(s.dir, DevState::I);
    EXPECT_EQ(s.host[0].cache, HostState::I);
    EXPECT_TRUE(model.checkInvariants(s).empty());
}

TEST(ProtocolModel, Case3LocalReadOfMigratedLine)
{
    ProtocolModel model(2);
    ProtoState s = model.apply(model.initial(), ProtoEvent::promote, 0);
    s = model.apply(s, ProtoEvent::write, 0);
    s = model.apply(s, ProtoEvent::evict, 0);
    s = model.apply(s, ProtoEvent::read, 0);     // case 3: I' -> ME
    EXPECT_EQ(s.host[0].cache, HostState::ME);
    EXPECT_TRUE(s.host[0].latest);
    EXPECT_EQ(s.dir, DevState::I);               // no directory entry
    EXPECT_TRUE(model.checkInvariants(s).empty());
}

TEST(ProtocolModel, Case4MeEvictionWritesBackLocally)
{
    ProtocolModel model(2);
    ProtoState s = model.apply(model.initial(), ProtoEvent::promote, 0);
    s = model.apply(s, ProtoEvent::write, 0);
    s = model.apply(s, ProtoEvent::evict, 0);
    s = model.apply(s, ProtoEvent::write, 0);    // I' -> ME dirty
    s = model.apply(s, ProtoEvent::evict, 0);    // case 4: ME -> I'
    EXPECT_TRUE(s.lineMigrated);
    EXPECT_TRUE(s.localLatest);
    EXPECT_TRUE(model.checkInvariants(s).empty());
}

TEST(ProtocolModel, Case2InterHostReadMigratesBack)
{
    ProtocolModel model(2);
    ProtoState s = model.apply(model.initial(), ProtoEvent::promote, 0);
    s = model.apply(s, ProtoEvent::write, 0);
    s = model.apply(s, ProtoEvent::evict, 0);    // I' at h0
    s = model.apply(s, ProtoEvent::read, 1);     // case 2
    EXPECT_FALSE(s.lineMigrated);
    EXPECT_TRUE(s.memLatest);
    EXPECT_EQ(s.host[1].cache, HostState::M);
    EXPECT_TRUE(s.host[1].latest);
    EXPECT_TRUE(model.checkInvariants(s).empty());
}

TEST(ProtocolModel, Case6InterHostReadOfMeKeepsOwnerShared)
{
    ProtocolModel model(2);
    ProtoState s = model.apply(model.initial(), ProtoEvent::promote, 0);
    s = model.apply(s, ProtoEvent::write, 0);
    s = model.apply(s, ProtoEvent::evict, 0);
    s = model.apply(s, ProtoEvent::read, 0);     // ME at h0
    s = model.apply(s, ProtoEvent::read, 1);     // case 6
    EXPECT_EQ(s.host[0].cache, HostState::S);
    EXPECT_EQ(s.host[1].cache, HostState::S);
    EXPECT_EQ(s.dir, DevState::S);
    EXPECT_FALSE(s.lineMigrated);
    EXPECT_TRUE(model.checkInvariants(s).empty());
}

TEST(ProtocolModel, Case5InterHostWriteInvalidatesMeOwner)
{
    ProtocolModel model(2);
    ProtoState s = model.apply(model.initial(), ProtoEvent::promote, 0);
    s = model.apply(s, ProtoEvent::write, 0);
    s = model.apply(s, ProtoEvent::evict, 0);
    s = model.apply(s, ProtoEvent::read, 0);     // ME at h0
    s = model.apply(s, ProtoEvent::write, 1);    // case 5
    EXPECT_EQ(s.host[0].cache, HostState::I);
    EXPECT_EQ(s.host[1].cache, HostState::M);
    EXPECT_TRUE(s.host[1].dirty);
    EXPECT_FALSE(s.lineMigrated);
    EXPECT_TRUE(model.checkInvariants(s).empty());
}

TEST(ProtocolModel, RevocationRestoresCxlResidence)
{
    ProtocolModel model(2);
    ProtoState s = model.apply(model.initial(), ProtoEvent::promote, 0);
    s = model.apply(s, ProtoEvent::write, 0);
    s = model.apply(s, ProtoEvent::evict, 0);
    s = model.apply(s, ProtoEvent::revoke, 0);
    EXPECT_EQ(s.promotedTo, invalidHost);
    EXPECT_FALSE(s.lineMigrated);
    EXPECT_TRUE(s.memLatest);
    EXPECT_TRUE(model.checkInvariants(s).empty());
}

TEST(ProtocolModel, InvariantCheckerDetectsViolations)
{
    ProtocolModel model(2);
    ProtoState bad = model.initial();
    bad.host[0].cache = HostState::M;
    bad.host[0].latest = true;
    bad.host[1].cache = HostState::M;
    bad.host[1].latest = true;
    EXPECT_NE(model.checkInvariants(bad).find("SWMR"), std::string::npos);

    ProtoState stale = model.initial();
    stale.memLatest = false;
    EXPECT_FALSE(model.checkInvariants(stale).empty());

    ProtoState me_no_bit = model.initial();
    me_no_bit.host[0].cache = HostState::ME;
    me_no_bit.host[0].latest = true;
    EXPECT_FALSE(model.checkInvariants(me_no_bit).empty());
}

TEST(Checker, TwoHostProtocolIsSafe)
{
    const CheckResult result = checkProtocol(2);
    EXPECT_TRUE(result.ok) << result.violation << "\n"
                           << result.traceString(2);
    EXPECT_GT(result.statesExplored, 20u);
    EXPECT_GT(result.transitions, result.statesExplored);
}

TEST(Checker, ThreeHostProtocolIsSafe)
{
    const CheckResult result = checkProtocol(3);
    EXPECT_TRUE(result.ok) << result.violation << "\n"
                           << result.traceString(3);
}

TEST(Checker, FourHostProtocolIsSafe)
{
    const CheckResult result = checkProtocol(4);
    EXPECT_TRUE(result.ok) << result.violation;
}

TEST(ProtoState, EncodingIsInjectiveOnReachableStates)
{
    // Two different states must encode differently (spot check).
    ProtocolModel model(2);
    ProtoState a = model.initial();
    ProtoState b = model.apply(a, ProtoEvent::read, 0);
    EXPECT_NE(a.encode(2), b.encode(2));
    EXPECT_EQ(a.encode(2), model.initial().encode(2));
}

} // namespace
} // namespace pipm
