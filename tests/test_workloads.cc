/**
 * @file
 * Tests for the workload catalog and the synthetic trace generators:
 * Table 1 contents, determinism, and statistical properties (affinity,
 * read fraction, bounds, drift).
 */

#include <gtest/gtest.h>

#include <map>

#include "common/logging.hh"
#include "workloads/catalog.hh"

namespace pipm
{
namespace
{

constexpr unsigned scale = 256;

TEST(Catalog, ContainsAllThirteenTable1Workloads)
{
    const auto &patterns = table1Patterns();
    ASSERT_EQ(patterns.size(), 13u);
    const std::vector<std::string> expected = {
        "sssp", "bfs", "pr", "cc", "bc", "tc", "xsbench",
        "streamcluster", "fluidanimate", "canneal", "bodytrack",
        "tpcc", "ycsb"};
    for (std::size_t i = 0; i < expected.size(); ++i)
        EXPECT_EQ(patterns[i].name, expected[i]);
}

TEST(Catalog, FootprintsMatchTable1)
{
    std::map<std::string, std::uint64_t> gb = {
        {"sssp", 48}, {"bfs", 48},          {"pr", 48},
        {"cc", 48},   {"bc", 48},           {"tc", 48},
        {"xsbench", 42}, {"streamcluster", 18},
        {"fluidanimate", 10}, {"canneal", 12}, {"bodytrack", 8},
        {"tpcc", 24}, {"ycsb", 15}};
    for (const auto &p : table1Patterns())
        EXPECT_EQ(p.footprintFullBytes, gb.at(p.name) << 30) << p.name;
}

TEST(Catalog, ByNameRoundTrips)
{
    auto wl = workloadByName("ycsb", scale);
    EXPECT_EQ(wl->name(), "ycsb");
    EXPECT_EQ(wl->suite(), "Silo");
    EXPECT_EQ(wl->sharedBytes(), (15ull << 30) / scale);
}

TEST(Catalog, UnknownNameIsFatal)
{
    detail::throwOnError = true;
    EXPECT_THROW(workloadByName("nope", scale), SimError);
    detail::throwOnError = false;
}

TEST(Synthetic, TracesAreDeterministic)
{
    auto wl = workloadByName("pr", scale);
    auto a = wl->makeTrace(0, 0, 4, 4, 99);
    auto b = wl->makeTrace(0, 0, 4, 4, 99);
    for (int i = 0; i < 1000; ++i) {
        const MemRef ra = a->next();
        const MemRef rb = b->next();
        EXPECT_EQ(ra.page, rb.page);
        EXPECT_EQ(ra.lineIdx, rb.lineIdx);
        EXPECT_EQ(static_cast<int>(ra.op), static_cast<int>(rb.op));
        EXPECT_EQ(ra.gap, rb.gap);
    }
}

TEST(Synthetic, DifferentCoresDiffer)
{
    auto wl = workloadByName("pr", scale);
    auto a = wl->makeTrace(0, 0, 4, 4, 99);
    auto b = wl->makeTrace(0, 1, 4, 4, 99 + 7919);
    int same = 0;
    for (int i = 0; i < 200; ++i)
        same += a->next().page == b->next().page;
    EXPECT_LT(same, 100);
}

TEST(Synthetic, ReferencesStayInBounds)
{
    auto wl = workloadByName("canneal", scale);
    const std::uint64_t shared_pages = wl->sharedBytes() / pageBytes;
    const std::uint64_t private_pages =
        wl->privateBytesPerHost() / pageBytes;
    auto trace = wl->makeTrace(2, 1, 4, 4, 5);
    for (int i = 0; i < 50000; ++i) {
        const MemRef r = trace->next();
        EXPECT_LT(r.lineIdx, linesPerPage);
        if (r.shared)
            EXPECT_LT(r.page, shared_pages);
        else
            EXPECT_LT(r.page, private_pages);
    }
}

/** Property sweep: the generated stream matches its parameters. */
class PatternStats : public ::testing::TestWithParam<const char *>
{
};

TEST_P(PatternStats, ReadFractionAndAffinityMatchParameters)
{
    auto base = workloadByName(GetParam(), scale);
    const auto &wl = dynamic_cast<const SyntheticWorkload &>(*base);
    const PatternParams &p = wl.params();
    constexpr unsigned hosts = 4;
    const std::uint64_t partition_pages =
        wl.sharedBytes() / pageBytes / hosts;

    auto trace = wl.makeTrace(1, 0, 4, hosts, 77);
    std::uint64_t reads = 0, total = 0, shared = 0, own = 0, hot = 0;
    constexpr int n = 200000;
    const std::uint64_t hot_pages = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(wl.sharedBytes() / pageBytes *
                                      p.globalHotSpan));
    for (int i = 0; i < n; ++i) {
        const MemRef r = trace->next();
        ++total;
        reads += r.op == MemOp::read;
        if (r.shared) {
            ++shared;
            if (r.page < hot_pages)
                ++hot;
            else if (r.page / partition_pages == 1)
                ++own;
        }
    }
    EXPECT_NEAR(double(reads) / total, p.readFrac, 0.02) << GetParam();
    EXPECT_NEAR(double(shared) / total, 1.0 - p.privateFrac, 0.02);
    // Non-hot shared references land in the own partition at least at
    // the affinity rate (the scan adds own-partition traffic on top).
    const double own_frac = double(own) / double(shared - hot);
    EXPECT_GE(own_frac, p.partitionAffinity - 0.05) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, PatternStats,
                         ::testing::Values("sssp", "bfs", "pr", "cc",
                                           "bc", "tc", "xsbench",
                                           "streamcluster",
                                           "fluidanimate", "canneal",
                                           "bodytrack", "tpcc", "ycsb"));

TEST(Synthetic, ScanDriftMovesTheWindow)
{
    auto wl = workloadByName("pr", scale);
    auto trace = wl->makeTrace(0, 0, 1, 4, 3);
    // Collect the scan pages early and late; the drift must introduce
    // pages unseen early.
    std::set<std::uint64_t> early, late;
    for (int i = 0; i < 50000; ++i)
        early.insert(trace->next().page);
    for (int i = 0; i < 400000; ++i)
        trace->next();
    for (int i = 0; i < 50000; ++i)
        late.insert(trace->next().page);
    std::uint64_t fresh = 0;
    for (std::uint64_t p : late)
        fresh += !early.contains(p);
    EXPECT_GT(fresh, late.size() / 10);
}

} // namespace
} // namespace pipm
